//! `.jrt` request-trace record and replay.
//!
//! A scenario — a stream of `Route` / `Unroute` / `Replace` requests
//! with priorities and deadlines, split into batches — is itself an
//! artifact worth keeping: replayed against a deterministic service it
//! is a regression fixture, and replayed under different configs it is
//! an A/B benchmark input (the `e16_scenarios` rows). This module
//! defines that artifact: a [`Trace`] with a stable, hand-rolled binary
//! form in the style of [`virtex::codec`] (the workspace builds
//! hermetically, so there is no serde), conventionally stored in `.jrt`
//! files.
//!
//! ## Format
//!
//! Little-endian, fixed-width, append-only:
//!
//! ```text
//! magic  b"JRT1" (untagged) or b"JRT2" (tenant-tagged)
//! family Family codec (1 byte)
//! u32    batch count
//! per batch:
//!   u32  request count
//!   per request:
//!     u8   priority
//!     u16  tenant            (JRT2 only)
//!     u8   deadline tag: 0 = none, 1 = Steps(u64 LE)
//!     u8   op tag: 0 = Route, 1 = Unroute, 2 = Replace
//!     Route:   NetSpec
//!     Unroute: u32 victim (trace id)
//!     Replace: u16 victim count, u32 victims…, u16 add count, NetSpec…
//! NetSpec: Pin source, u16 sink count, Pin sinks…
//! Pin:     RowCol codec (4 bytes), Wire codec (2 bytes)
//! ```
//!
//! Victims are **trace ids**: the 0-based global submission index of the
//! earlier request whose nets are being torn down (requests number
//! across batch boundaries in submission order). Replay maps trace ids
//! to the live [`RequestId`]s the service hands out, so a trace is
//! position-independent — it replays into a fresh service or after
//! other traffic equally well.
//!
//! Multi-tenant scenarios for the [`server`](crate::server) tag each
//! request with its [`TenantId`]. A trace whose requests are all tenant
//! 0 encodes in the original `JRT1` form — old fixtures stay
//! byte-identical — and old `JRT1` files load with every request as
//! tenant 0. Victims must stay within their request's tenant.
//!
//! The encoding is canonical (one byte string per value, and the tagged
//! header iff a nonzero tenant exists), which the round-trip property
//! test exploits: decode followed by re-encode must reproduce the input
//! byte-for-byte.

use crate::{Deadline, RequestId, RequestKind, RoutingService, TenantId};
use jroute::pathfinder::NetSpec;
use jroute::Pin;
use virtex::codec::Codec;
use virtex::{Family, RowCol, Wire};

use crate::BatchReport;

/// File magic for untagged (single-tenant) `.jrt` traces.
pub const MAGIC: [u8; 4] = *b"JRT1";

/// File magic for tenant-tagged `.jrt` traces.
pub const MAGIC_V2: [u8; 4] = *b"JRT2";

/// Index of a request within a trace: its 0-based global submission
/// order, the namespace `Unroute`/`Replace` victims are named in.
pub type TraceId = u32;

/// One recorded request.
#[derive(Debug, Clone)]
pub struct TraceReq {
    /// Scheduling priority (lower runs earlier), as submitted.
    pub priority: u8,
    /// Tenant the request belongs to (0 for single-tenant traces,
    /// including every legacy `JRT1` file).
    pub tenant: TenantId,
    /// Step deadline, if any. Wall-clock deadlines are not recorded:
    /// they are meaningless to a deterministic replay.
    pub deadline: Option<u64>,
    /// The operation, with victims as trace ids.
    pub op: TraceOp,
}

/// A recorded operation. Mirrors [`RequestKind`] with victims renamed
/// into the trace-id namespace.
#[derive(Debug, Clone)]
pub enum TraceOp {
    /// Route one net.
    Route(NetSpec),
    /// Tear down the nets of an earlier request.
    Unroute(TraceId),
    /// Atomically swap the nets of earlier requests for replacements.
    Replace {
        /// Earlier requests whose nets are removed.
        remove: Vec<TraceId>,
        /// Replacement nets.
        add: Vec<NetSpec>,
    },
}

/// A recorded scenario: batches of requests against one device family.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Device family the pins were generated for.
    pub family: Option<Family>,
    /// Requests, grouped by the batch they ran in.
    pub batches: Vec<Vec<TraceReq>>,
}

impl Trace {
    /// Empty trace for `family`.
    pub fn new(family: Family) -> Self {
        Trace {
            family: Some(family),
            batches: vec![Vec::new()],
        }
    }

    /// Record one tenant-0 request into the current (last) batch and
    /// return its trace id.
    pub fn record(&mut self, priority: u8, deadline: Option<Deadline>, op: TraceOp) -> TraceId {
        self.record_for(0, priority, deadline, op)
    }

    /// Record one request for `tenant` into the current (last) batch and
    /// return its trace id.
    pub fn record_for(
        &mut self,
        tenant: TenantId,
        priority: u8,
        deadline: Option<Deadline>,
        op: TraceOp,
    ) -> TraceId {
        let id = self.len() as TraceId;
        let deadline = match deadline {
            Some(Deadline::Steps(s)) => Some(s),
            // Wall-clock deadlines depend on machine speed; a replay
            // cannot honour them meaningfully, so they are not recorded.
            Some(Deadline::Elapsed(_)) | None => None,
        };
        if self.batches.is_empty() {
            self.batches.push(Vec::new());
        }
        self.batches.last_mut().expect("non-empty").push(TraceReq {
            priority,
            tenant,
            deadline,
            op,
        });
        id
    }

    /// Close the current batch; subsequent records go to a new one.
    /// A trailing empty batch is not encoded.
    pub fn end_batch(&mut self) {
        if self.batches.last().is_none_or(|b| !b.is_empty()) {
            self.batches.push(Vec::new());
        }
    }

    /// Total requests recorded (the next trace id).
    pub fn len(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests in submission order, across batches.
    pub fn iter(&self) -> impl Iterator<Item = &TraceReq> {
        self.batches.iter().flatten()
    }

    /// Validate internal consistency: every victim reference names an
    /// earlier request *of the same tenant*. Returns the first bad
    /// reference.
    pub fn validate(&self) -> Result<(), TraceError> {
        let tenants: Vec<TenantId> = self.iter().map(|r| r.tenant).collect();
        for (seen, req) in (0 as TraceId..).zip(self.iter()) {
            let check = |ids: &[TraceId]| -> Result<(), TraceError> {
                if let Some(&v) = ids.iter().find(|&&v| v >= seen) {
                    return Err(TraceError::BadVictim(v));
                }
                match ids.iter().find(|&&v| tenants[v as usize] != req.tenant) {
                    Some(&v) => Err(TraceError::CrossTenantVictim(v)),
                    None => Ok(()),
                }
            };
            match &req.op {
                TraceOp::Route(_) => {}
                TraceOp::Unroute(v) => check(std::slice::from_ref(v))?,
                TraceOp::Replace { remove, .. } => check(remove)?,
            }
        }
        Ok(())
    }

    /// Number of tenant shards the trace spans: one past the highest
    /// tenant tag (0 for an empty trace).
    pub fn tenant_count(&self) -> usize {
        self.iter()
            .map(|r| usize::from(r.tenant) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Project one tenant's requests out as a standalone single-tenant
    /// (tenant-0) trace: batch structure is preserved and victims are
    /// renumbered into the subtrace's id space. Validate first —
    /// projection assumes victims never cross tenants.
    pub fn subtrace(&self, tenant: TenantId) -> Trace {
        // Global trace id -> subtrace id, for this tenant's requests.
        let mut local: Vec<Option<TraceId>> = Vec::with_capacity(self.len());
        let mut next: TraceId = 0;
        for req in self.iter() {
            if req.tenant == tenant {
                local.push(Some(next));
                next += 1;
            } else {
                local.push(None);
            }
        }
        let renumber = |v: &TraceId| local[*v as usize].expect("victim within tenant");
        let batches = self
            .batches
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .filter(|r| r.tenant == tenant)
                    .map(|r| TraceReq {
                        priority: r.priority,
                        tenant: 0,
                        deadline: r.deadline,
                        op: match &r.op {
                            TraceOp::Route(spec) => TraceOp::Route(spec.clone()),
                            TraceOp::Unroute(v) => TraceOp::Unroute(renumber(v)),
                            TraceOp::Replace { remove, add } => TraceOp::Replace {
                                remove: remove.iter().map(renumber).collect(),
                                add: add.clone(),
                            },
                        },
                    })
                    .collect()
            })
            .collect();
        Trace {
            family: self.family,
            batches,
        }
    }

    /// Write the encoded trace to a `.jrt` file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read and decode a `.jrt` file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(&path)?;
        Trace::from_bytes(&bytes).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: not a valid .jrt trace", path.as_ref().display()),
            )
        })
    }

    /// Replay the trace through a service: submit each batch, run it,
    /// collect the reports. Trace-id victims are mapped to the live
    /// [`RequestId`]s assigned at submission, so replaying into a
    /// service that has already processed other traffic works.
    ///
    /// The trace's family must match the service's device; forward or
    /// out-of-range victim references fail before anything is submitted.
    /// Only single-tenant (all-tenant-0) traces replay through a bare
    /// service — route a tagged trace through
    /// [`server::replay_trace`](crate::server::replay_trace), or project
    /// one shard out with [`Trace::subtrace`].
    pub fn replay(&self, svc: &mut RoutingService<'_>) -> Result<ReplaySummary, TraceError> {
        if self.iter().any(|r| r.tenant != 0) {
            return Err(TraceError::MultiTenant);
        }
        if let Some(fam) = self.family {
            let have = svc.device().family();
            if fam != have {
                return Err(TraceError::FamilyMismatch {
                    trace: fam,
                    device: have,
                });
            }
        }
        self.validate()?;
        let mut ids: Vec<RequestId> = Vec::with_capacity(self.len());
        let mut reports = Vec::with_capacity(self.batches.len());
        for batch in &self.batches {
            for req in batch {
                let live = |v: TraceId| ids[v as usize];
                let kind = match &req.op {
                    TraceOp::Route(spec) => RequestKind::Route(spec.clone()),
                    TraceOp::Unroute(v) => RequestKind::Unroute(live(*v)),
                    TraceOp::Replace { remove, add } => RequestKind::Replace {
                        remove: remove.iter().map(|&v| live(v)).collect(),
                        add: add.clone(),
                    },
                };
                let deadline = req.deadline.map(Deadline::Steps);
                let (id, _) = svc
                    .submit_with(kind, req.priority, deadline)
                    .map_err(|_| TraceError::QueueFull)?;
                ids.push(id);
            }
            if !batch.is_empty() {
                reports.push(svc.run_batch());
            }
        }
        let succeeded = reports
            .iter()
            .flat_map(|r| &r.outcomes)
            .filter(|(_, o)| o.is_success())
            .count();
        Ok(ReplaySummary {
            submitted: ids.len(),
            succeeded,
            ids,
            reports,
        })
    }
}

/// What a [`Trace::replay`] did.
#[derive(Debug)]
pub struct ReplaySummary {
    /// Requests submitted (equals the trace length).
    pub submitted: usize,
    /// Requests whose outcome changed committed state.
    pub succeeded: usize,
    /// Live request id per trace id, in submission order.
    pub ids: Vec<RequestId>,
    /// One report per non-empty batch, in order.
    pub reports: Vec<BatchReport>,
}

/// Why a trace could not replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The trace was recorded against a different device family.
    FamilyMismatch {
        /// Family recorded in the trace header.
        trace: Family,
        /// Family of the replaying service's device.
        device: Family,
    },
    /// A victim reference names a request at or after its own position.
    BadVictim(TraceId),
    /// A victim reference crosses tenant shards.
    CrossTenantVictim(TraceId),
    /// A request is tagged for a tenant the replaying server does not
    /// have a device for.
    UnknownTenant(TenantId),
    /// A tenant-tagged trace was replayed through a single-tenant
    /// service.
    MultiTenant,
    /// The service's submission queue could not hold a batch.
    QueueFull,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::FamilyMismatch { trace, device } => {
                write!(f, "trace is for {trace} but the device is {device}")
            }
            TraceError::BadVictim(v) => write!(f, "victim #{v} is not an earlier request"),
            TraceError::CrossTenantVictim(v) => {
                write!(f, "victim #{v} belongs to a different tenant")
            }
            TraceError::UnknownTenant(t) => {
                write!(f, "trace names tenant {t} but the server has no such shard")
            }
            TraceError::MultiTenant => {
                write!(
                    f,
                    "tenant-tagged trace cannot replay through a single-tenant service"
                )
            }
            TraceError::QueueFull => write!(f, "service queue cannot hold a trace batch"),
        }
    }
}

impl std::error::Error for TraceError {}

fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = input.split_first()?;
    *input = rest;
    Some(b)
}

fn take_u16(input: &mut &[u8]) -> Option<u16> {
    let (bytes, rest) = input.split_first_chunk::<2>()?;
    *input = rest;
    Some(u16::from_le_bytes(*bytes))
}

fn take_u32(input: &mut &[u8]) -> Option<u32> {
    let (bytes, rest) = input.split_first_chunk::<4>()?;
    *input = rest;
    Some(u32::from_le_bytes(*bytes))
}

fn take_u64(input: &mut &[u8]) -> Option<u64> {
    let (bytes, rest) = input.split_first_chunk::<8>()?;
    *input = rest;
    Some(u64::from_le_bytes(*bytes))
}

fn encode_pin(pin: &Pin, out: &mut Vec<u8>) {
    pin.rc.encode(out);
    pin.wire.encode(out);
}

fn decode_pin(input: &mut &[u8]) -> Option<Pin> {
    Some(Pin::at(RowCol::decode(input)?, Wire::decode(input)?))
}

fn encode_spec(spec: &NetSpec, out: &mut Vec<u8>) {
    encode_pin(&spec.source, out);
    debug_assert!(spec.sinks.len() <= u16::MAX as usize);
    out.extend_from_slice(&(spec.sinks.len() as u16).to_le_bytes());
    for s in &spec.sinks {
        encode_pin(s, out);
    }
}

fn decode_spec(input: &mut &[u8]) -> Option<NetSpec> {
    let source = decode_pin(input)?;
    let n = take_u16(input)? as usize;
    let mut sinks = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        sinks.push(decode_pin(input)?);
    }
    Some(NetSpec::new(source, sinks))
}

/// Encode one request; `tagged` selects the `JRT2` layout (tenant u16
/// after the priority byte).
fn encode_req(req: &TraceReq, tagged: bool, out: &mut Vec<u8>) {
    out.push(req.priority);
    if tagged {
        out.extend_from_slice(&req.tenant.to_le_bytes());
    } else {
        debug_assert_eq!(req.tenant, 0, "untagged encoding requires tenant 0");
    }
    match req.deadline {
        None => out.push(0),
        Some(steps) => {
            out.push(1);
            out.extend_from_slice(&steps.to_le_bytes());
        }
    }
    match &req.op {
        TraceOp::Route(spec) => {
            out.push(0);
            encode_spec(spec, out);
        }
        TraceOp::Unroute(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        TraceOp::Replace { remove, add } => {
            out.push(2);
            debug_assert!(remove.len() <= u16::MAX as usize);
            out.extend_from_slice(&(remove.len() as u16).to_le_bytes());
            for v in remove {
                out.extend_from_slice(&v.to_le_bytes());
            }
            debug_assert!(add.len() <= u16::MAX as usize);
            out.extend_from_slice(&(add.len() as u16).to_le_bytes());
            for spec in add {
                encode_spec(spec, out);
            }
        }
    }
}

/// Decode one request from the `tagged` (`JRT2`) or untagged (`JRT1`,
/// tenant 0) layout.
fn decode_req(input: &mut &[u8], tagged: bool) -> Option<TraceReq> {
    let priority = take_u8(input)?;
    let tenant = if tagged { take_u16(input)? } else { 0 };
    let deadline = match take_u8(input)? {
        0 => None,
        1 => Some(take_u64(input)?),
        _ => return None,
    };
    let op = match take_u8(input)? {
        0 => TraceOp::Route(decode_spec(input)?),
        1 => TraceOp::Unroute(take_u32(input)?),
        2 => {
            let nr = take_u16(input)? as usize;
            let mut remove = Vec::with_capacity(nr.min(1024));
            for _ in 0..nr {
                remove.push(take_u32(input)?);
            }
            let na = take_u16(input)? as usize;
            let mut add = Vec::with_capacity(na.min(1024));
            for _ in 0..na {
                add.push(decode_spec(input)?);
            }
            TraceOp::Replace { remove, add }
        }
        _ => return None,
    };
    Some(TraceReq {
        priority,
        tenant,
        deadline,
        op,
    })
}

impl Codec for Trace {
    fn encode(&self, out: &mut Vec<u8>) {
        // Canonical header selection: the tagged layout exists iff a
        // nonzero tenant does, so all-tenant-0 traces (every legacy
        // producer) still encode byte-identical `JRT1`.
        let tagged = self.iter().any(|r| r.tenant != 0);
        out.extend_from_slice(if tagged { &MAGIC_V2 } else { &MAGIC });
        self.family
            .expect("encoding a trace requires a family")
            .encode(out);
        // A trailing empty batch (an `end_batch` with nothing after it)
        // is a recording artifact, not content; skip it so record order
        // and re-encode stay canonical.
        let batches: Vec<&Vec<TraceReq>> = self
            .batches
            .iter()
            .enumerate()
            .filter(|&(i, b)| !b.is_empty() || i + 1 < self.batches.len())
            .map(|(_, b)| b)
            .collect();
        out.extend_from_slice(&(batches.len() as u32).to_le_bytes());
        for batch in batches {
            out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for req in batch {
                encode_req(req, tagged, out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let (magic, rest) = input.split_first_chunk::<4>()?;
        let tagged = match *magic {
            MAGIC => false,
            MAGIC_V2 => true,
            _ => return None,
        };
        *input = rest;
        let family = Family::decode(input)?;
        let nb = take_u32(input)? as usize;
        let mut batches = Vec::with_capacity(nb.min(1024));
        for _ in 0..nb {
            let nr = take_u32(input)? as usize;
            let mut batch = Vec::with_capacity(nr.min(4096));
            for _ in 0..nr {
                batch.push(decode_req(input, tagged)?);
            }
            batches.push(batch);
        }
        // Canonical: the tagged header must be necessary.
        if tagged && batches.iter().flatten().all(|r| r.tenant == 0) {
            return None;
        }
        Some(Trace {
            family: Some(family),
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, RequestOutcome, ServiceConfig};
    use jroute::Pin as JPin;
    use virtex::{wire, Device};

    fn spec(i: u16) -> NetSpec {
        NetSpec::new(
            JPin::new(2 + i % 10, 2 + i % 14, wire::S0_YQ),
            vec![JPin::new(3 + i % 10, 5 + i % 14, wire::S0_F3)],
        )
    }

    fn sample() -> Trace {
        let mut t = Trace::new(Family::Xcv50);
        let a = t.record(128, None, TraceOp::Route(spec(0)));
        let b = t.record(10, Some(Deadline::Steps(100)), TraceOp::Route(spec(1)));
        t.end_batch();
        t.record(128, None, TraceOp::Unroute(a));
        t.record(
            200,
            None,
            TraceOp::Replace {
                remove: vec![b],
                add: vec![spec(2), spec(3)],
            },
        );
        t
    }

    #[test]
    fn encode_decode_reencode_is_byte_identical() {
        let t = sample();
        let bytes = t.to_bytes();
        let decoded = Trace::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.len(), t.len());
        assert_eq!(decoded.batches.len(), 2);
        assert_eq!(decoded.to_bytes(), bytes, "canonical re-encode");
    }

    #[test]
    fn trailing_empty_batch_is_not_encoded() {
        let mut t = sample();
        t.end_batch();
        t.end_batch();
        let decoded = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded.batches.len(), 2);
        // `end_batch` is idempotent: a repeated call between two
        // requests opens exactly one new batch, never an empty interior
        // one.
        let mut t = Trace::new(Family::Xcv50);
        t.record(128, None, TraceOp::Route(spec(0)));
        t.end_batch();
        t.end_batch();
        t.record(128, None, TraceOp::Route(spec(1)));
        let decoded = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded.batches.len(), 2);
        assert_eq!(decoded.to_bytes(), t.to_bytes());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::from_bytes(b"").is_none());
        assert!(
            Trace::from_bytes(b"JRT0\x00\x00\x00\x00\x00").is_none(),
            "bad magic"
        );
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Trace::from_bytes(&bytes).is_none(), "truncated");
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(Trace::from_bytes(&bytes).is_none(), "trailing bytes");
    }

    #[test]
    fn validate_rejects_forward_and_self_references() {
        let mut t = Trace::new(Family::Xcv50);
        t.record(128, None, TraceOp::Unroute(0));
        assert_eq!(t.validate(), Err(TraceError::BadVictim(0)));
        let mut t = Trace::new(Family::Xcv50);
        t.record(128, None, TraceOp::Route(spec(0)));
        t.record(
            128,
            None,
            TraceOp::Replace {
                remove: vec![5],
                add: vec![],
            },
        );
        assert_eq!(t.validate(), Err(TraceError::BadVictim(5)));
        assert!(sample().validate().is_ok());
    }

    fn tenant_sample() -> Trace {
        let mut t = Trace::new(Family::Xcv50);
        let a = t.record_for(0, 128, None, TraceOp::Route(spec(0)));
        let b = t.record_for(1, 100, None, TraceOp::Route(spec(1)));
        t.end_batch();
        t.record_for(0, 128, None, TraceOp::Unroute(a));
        t.record_for(
            1,
            200,
            Some(Deadline::Steps(50)),
            TraceOp::Replace {
                remove: vec![b],
                add: vec![spec(2)],
            },
        );
        t
    }

    #[test]
    fn tenant_tagged_trace_round_trips_as_jrt2() {
        let t = tenant_sample();
        let bytes = t.to_bytes();
        assert_eq!(&bytes[..4], b"JRT2", "nonzero tenants force the tag");
        let decoded = Trace::from_bytes(&bytes).expect("decodes");
        let tenants: Vec<TenantId> = decoded.iter().map(|r| r.tenant).collect();
        assert_eq!(tenants, vec![0, 1, 0, 1]);
        assert_eq!(decoded.to_bytes(), bytes, "canonical re-encode");
        assert_eq!(decoded.tenant_count(), 2);
        assert!(decoded.validate().is_ok());
    }

    #[test]
    fn untagged_traces_stay_jrt1_and_load_as_tenant_zero() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(&bytes[..4], b"JRT1", "all-tenant-0 stays legacy");
        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert!(decoded.iter().all(|r| r.tenant == 0));
        assert_eq!(decoded.tenant_count(), 1);
        // A JRT2 header on all-zero tenants is non-canonical garbage.
        let mut fake = bytes.clone();
        fake[..4].copy_from_slice(b"JRT2");
        assert!(Trace::from_bytes(&fake).is_none());
    }

    #[test]
    fn validate_rejects_cross_tenant_victims() {
        let mut t = Trace::new(Family::Xcv50);
        let a = t.record_for(0, 128, None, TraceOp::Route(spec(0)));
        t.record_for(1, 128, None, TraceOp::Unroute(a));
        assert_eq!(t.validate(), Err(TraceError::CrossTenantVictim(0)));
    }

    #[test]
    fn subtrace_projects_one_shard_with_renumbered_victims() {
        let t = tenant_sample();
        let s1 = t.subtrace(1);
        assert_eq!(s1.len(), 2);
        assert_eq!(s1.batches.len(), 2);
        assert!(s1.iter().all(|r| r.tenant == 0), "projection re-tags");
        match &s1.batches[1][0].op {
            TraceOp::Replace { remove, .. } => {
                assert_eq!(remove, &vec![0], "victim renumbered to local id")
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        assert!(s1.validate().is_ok());
        // The projection of a single-tenant trace onto tenant 0 is the
        // identity.
        let t0 = sample();
        assert_eq!(t0.subtrace(0).to_bytes(), t0.to_bytes());
    }

    #[test]
    fn single_service_replay_refuses_tagged_traces() {
        let dev = Device::new(Family::Xcv50);
        let mut svc = RoutingService::new(&dev, ServiceConfig::default());
        assert!(matches!(
            tenant_sample().replay(&mut svc),
            Err(TraceError::MultiTenant)
        ));
    }

    #[test]
    fn replay_reproduces_the_recorded_scenario() {
        let dev = Device::new(Family::Xcv50);
        let cfg = ServiceConfig {
            threads: 2,
            mode: ExecMode::Deterministic { seed: 9 },
            audit: true,
            ..Default::default()
        };
        let t = sample();
        let mut svc = RoutingService::new(&dev, cfg.clone());
        let summary = t.replay(&mut svc).expect("replays");
        assert_eq!(summary.submitted, 4);
        assert_eq!(summary.reports.len(), 2);
        // Request `a` was unrouted, `b` replaced by two nets: exactly
        // the replacements remain.
        assert_eq!(svc.db().len(), 2);
        let replaced = summary.ids[3];
        assert!(matches!(
            summary.reports[1]
                .outcome(replaced)
                .expect("replace outcome"),
            RequestOutcome::Replaced { added, .. } if added.len() == 2
        ));
        // A second replay into a fresh deterministic service lands on
        // the identical census — the fixture property.
        let mut svc2 = RoutingService::new(&dev, cfg);
        t.replay(&mut svc2).unwrap();
        assert_eq!(svc.db().census(), svc2.db().census());
    }

    #[test]
    fn replay_rejects_a_family_mismatch() {
        let dev = Device::new(Family::Xcv300);
        let mut svc = RoutingService::new(&dev, ServiceConfig::default());
        match sample().replay(&mut svc) {
            Err(TraceError::FamilyMismatch { trace, device }) => {
                assert_eq!(trace, Family::Xcv50);
                assert_eq!(device, Family::Xcv300);
            }
            other => panic!("expected a family mismatch, got {other:?}"),
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let t = sample();
        let path = std::env::temp_dir().join(format!("jrt-test-{}.jrt", std::process::id()));
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded.to_bytes(), t.to_bytes());
        std::fs::remove_file(&path).ok();
    }
}
