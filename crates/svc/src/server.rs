//! Async multi-tenant routing server over [`RoutingService`].
//!
//! JRoute's end state is routing as a long-running *service*: many
//! independent reconfigurable cores (tenants), each owning a device
//! shard, issuing route/unroute/replace calls concurrently while the
//! designs run (paper §1, §3; the JIT-overlay line in PAPERS.md). This
//! module grows the synchronous `run_batch` front-end into that shape:
//!
//! * **channel-fed driver loop** — producer handles
//!   ([`TenantHandle::submit`]) send admissions into one MPSC channel; a
//!   driver thread forms per-tenant batches by size watermark
//!   ([`ServerConfig::batch_max`]) and age watermark
//!   ([`ServerConfig::batch_wait`], counted in *logical steps* = global
//!   admissions processed), and dispatches them to per-tenant executor
//!   threads — so a long maze search on one tenant never stalls another
//!   tenant's queued unroutes, and batch `k+1` forms while batch `k`
//!   routes (pipelining);
//! * **tenancy** — each tenant owns a `Bitstream`-backed device and a
//!   [`NetDb`](jroute::NetDb) shard behind its own [`RoutingService`];
//!   executors share the machine through a
//!   [`ThreadBudget`](jroute::schedule::ThreadBudget) so the sum of
//!   concurrently routing workers respects [`ServerConfig::threads`];
//! * **admission control** — a bounded per-tenant gate rejects
//!   [`QueueFull`] synchronously at `submit`, the depth draining as
//!   requests reach terminal outcomes;
//! * **observability** — per-tenant labelled families
//!   (`svc.server.*{tenant="t"}`, see [`jroute_obs::labeled`]) flow
//!   through the sharded registry into an [`Aggregator`] window and the
//!   Prometheus exposition;
//! * **determinism** — in [`ExecMode::Deterministic`] the driver blocks
//!   on the channel (no wall-clock flushes), batch boundaries are a pure
//!   function of the admission sequence, and each tenant's service runs
//!   the replayable single-consumer schedule over a *fixed* deque
//!   topology ([`ServerConfig::tenant_threads`]) with a per-tenant
//!   derived seed. The shared pool width then affects only wall-clock
//!   overlap between tenants — never results — so a fixed submission
//!   trace is bit-replayable across any [`ServerConfig::threads`].
//!
//! Faults are contained per batch: a panic while a tenant's batch
//! executes (exercised via [`FaultPlan`]) marks that tenant *poisoned* —
//! the batch's tickets resolve [`ServerOutcome::Poisoned`], subsequent
//! admissions for that tenant answer `Poisoned` immediately, and every
//! other tenant keeps serving.

use crate::request::{Deadline, QueueFull, RequestId, RequestKind, RequestOutcome, TenantId};
use crate::trace::{Trace, TraceError, TraceOp};
use crate::{CancelToken, ExecMode, RoutingService, ServiceConfig};
use jroute::maze::MazeConfig;
use jroute::schedule::ThreadBudget;
use jroute::NetId;
use jroute_obs::{labeled, Aggregator, Counter, Gauge, Histo, Recorder};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use virtex::{Device, Segment};

/// Fault-injection plan for driver-loop tests: panic the executing
/// worker when the named admission reaches execution, mid-batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Panic while the batch containing admission `(tenant, seq)` is
    /// being fed to the tenant's service — after earlier requests in the
    /// batch were admitted, before any completes — so the whole batch is
    /// poisoned.
    pub panic_on: Option<(TenantId, u64)>,
}

/// Multi-tenant server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shared routing-pool width: the budgeted sum of worker threads
    /// across all tenants routing concurrently (threaded mode). In
    /// deterministic mode this affects wall-clock overlap only, never
    /// results.
    pub threads: usize,
    /// Per-tenant deque topology: the worker count each tenant's
    /// service schedules over. Fixed (not pool-dependent) so the
    /// deterministic schedule — a pure function of (seed, this width,
    /// batch) — is identical whatever the pool width.
    pub tenant_threads: usize,
    /// Maze options shared by every tenant.
    pub maze: MazeConfig,
    /// Per-tenant admission-gate capacity; [`TenantHandle::submit`]
    /// fails with [`QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Per-request execution attempts (see
    /// [`ServiceConfig::max_attempts`]).
    pub max_attempts: u32,
    /// Execution mode. A [`ExecMode::Deterministic`] seed is the
    /// *server* seed; each tenant derives its own.
    pub mode: ExecMode,
    /// Post-batch claim audits on every tenant service.
    pub audit: bool,
    /// Size watermark: an admission that fills a tenant's forming batch
    /// to this many requests cuts it immediately.
    pub batch_max: usize,
    /// Age watermark in logical steps (global admissions processed): a
    /// forming batch whose oldest request has waited this many steps is
    /// cut at the next step. Threaded mode additionally flushes pending
    /// batches on channel-idle timeouts, so a quiet server still makes
    /// progress; deterministic mode cuts on logical steps and explicit
    /// [`TenantHandle::flush`] only.
    pub batch_wait: u64,
    /// Fault injection (tests only; default = no faults).
    pub fault: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            tenant_threads: 2,
            maze: MazeConfig::default(),
            queue_capacity: 1024,
            max_attempts: 8,
            mode: ExecMode::Threaded,
            audit: cfg!(debug_assertions),
            batch_max: 32,
            batch_wait: 8,
            fault: FaultPlan::default(),
        }
    }
}

/// The per-tenant seed in deterministic mode: derived from the server
/// seed by a golden-ratio mix so tenants explore independent schedules.
pub fn tenant_seed(server_seed: u64, tenant: TenantId) -> u64 {
    server_seed ^ (u64::from(tenant) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The [`ServiceConfig`] tenant `tenant`'s executor runs under — public
/// so replay-fidelity tests can drive a standalone [`RoutingService`]
/// with the exact per-tenant policy the server uses.
pub fn tenant_service_config(cfg: &ServerConfig, tenant: TenantId) -> ServiceConfig {
    ServiceConfig {
        threads: cfg.tenant_threads.max(1),
        maze: cfg.maze.clone(),
        // A cut batch is fed to the service whole, so the service queue
        // must hold at least one full batch.
        queue_capacity: cfg.queue_capacity.max(cfg.batch_max).max(1),
        max_attempts: cfg.max_attempts,
        mode: match cfg.mode {
            ExecMode::Threaded => ExecMode::Threaded,
            ExecMode::Deterministic { seed } => ExecMode::Deterministic {
                seed: tenant_seed(seed, tenant),
            },
        },
        audit: cfg.audit,
    }
}

// ----------------------------------------------------------------------
// Batch former
// ----------------------------------------------------------------------

/// Pure per-tenant batch former: accumulates items and cuts batches on
/// the size watermark, the age watermark (in the caller's logical
/// clock), or an explicit flush. No wall clock anywhere — the driver
/// owns time, which is what keeps batch boundaries replayable.
#[derive(Debug)]
pub struct BatchFormer<T> {
    max: usize,
    wait: u64,
    pending: Vec<(u64, T)>,
}

impl<T> BatchFormer<T> {
    /// A former cutting at `max` items or `wait` logical steps of age.
    pub fn new(max: usize, wait: u64) -> Self {
        BatchFormer {
            max: max.max(1),
            wait,
            pending: Vec::new(),
        }
    }

    /// Accept one item admitted at logical step `now`; returns the cut
    /// batch when this item fills it to the size watermark.
    pub fn push(&mut self, now: u64, item: T) -> Option<Vec<T>> {
        self.pending.push((now, item));
        (self.pending.len() >= self.max).then(|| self.take())
    }

    /// Whether the oldest pending item has aged to the watermark at
    /// logical step `now`.
    pub fn due(&self, now: u64) -> bool {
        self.pending
            .first()
            .is_some_and(|&(at, _)| now.saturating_sub(at) >= self.wait)
    }

    /// Cut whatever is pending (empty → `None`).
    pub fn flush(&mut self) -> Option<Vec<T>> {
        (!self.pending.is_empty()).then(|| self.take())
    }

    /// Items currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    fn take(&mut self) -> Vec<T> {
        self.pending.drain(..).map(|(_, item)| item).collect()
    }
}

// ----------------------------------------------------------------------
// Tickets and outcomes
// ----------------------------------------------------------------------

/// Terminal status of one server admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerOutcome {
    /// The request ran to a service outcome (which may itself be a
    /// rejection — see [`RequestOutcome`]).
    Done(RequestOutcome),
    /// The request was in (or behind) a batch whose executor panicked;
    /// its effects, if any, are untrusted and its tenant stopped
    /// serving.
    Poisoned,
}

impl ServerOutcome {
    /// Whether the admission changed its tenant's committed state.
    pub fn is_success(&self) -> bool {
        matches!(self, ServerOutcome::Done(o) if o.is_success())
    }
}

#[derive(Debug, Default)]
struct TicketState {
    slot: Mutex<Option<ServerOutcome>>,
    ready: Condvar,
}

impl TicketState {
    fn fulfill(&self, outcome: ServerOutcome) {
        *self.slot.lock().unwrap() = Some(outcome);
        self.ready.notify_all();
    }
}

/// Handle to one admitted request: its per-tenant id (the victim
/// namespace for later `Unroute`/`Replace` admissions), a cancellation
/// token, and the terminal outcome.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    tenant: TenantId,
    cancel: Arc<AtomicBool>,
    state: Arc<TicketState>,
}

impl Ticket {
    /// Per-tenant admission id. Later admissions of the same tenant name
    /// this request as an `Unroute`/`Replace` victim by this id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this admission belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Token cancelling this request from any thread — while still
    /// queued in the server (pre-batch), while queued in the tenant
    /// service, or mid-search.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken(Arc::clone(&self.cancel))
    }

    /// The outcome, if already terminal.
    pub fn try_outcome(&self) -> Option<ServerOutcome> {
        self.state.slot.lock().unwrap().clone()
    }

    /// Block until the outcome is terminal. In deterministic mode make
    /// sure the request's batch can cut (watermark or
    /// [`TenantHandle::flush`]) before waiting.
    pub fn wait(&self) -> ServerOutcome {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(outcome) = slot.clone() {
                return outcome;
            }
            slot = self.state.ready.wait(slot).unwrap();
        }
    }
}

// ----------------------------------------------------------------------
// Admission gate and producer handles
// ----------------------------------------------------------------------

/// Per-tenant admission control + submit-side meters.
#[derive(Debug)]
struct TenantGate {
    capacity: usize,
    depth: AtomicUsize,
    next_seq: AtomicU64,
    depth_gauge: Gauge,
    submitted: Counter,
    queue_full: Counter,
}

impl TenantGate {
    /// Reserve one queue slot, or fail with [`QueueFull`].
    fn admit(&self) -> Result<u64, QueueFull> {
        loop {
            let depth = self.depth.load(Ordering::SeqCst);
            if depth >= self.capacity {
                self.queue_full.inc();
                return Err(QueueFull {
                    capacity: self.capacity,
                });
            }
            if self
                .depth
                .compare_exchange(depth, depth + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.depth_gauge.set((depth + 1) as u64);
                self.submitted.inc();
                return Ok(self.next_seq.fetch_add(1, Ordering::SeqCst));
            }
        }
    }

    /// Release one slot at a terminal outcome.
    fn release(&self) {
        let before = self.depth.fetch_sub(1, Ordering::SeqCst);
        self.depth_gauge.set(before.saturating_sub(1) as u64);
    }
}

struct Submission {
    tenant: TenantId,
    seq: u64,
    kind: RequestKind,
    priority: u8,
    deadline: Option<Deadline>,
    cancel: Arc<AtomicBool>,
    ticket: Arc<TicketState>,
    submitted_ns: u64,
}

enum Msg {
    Submit(Box<Submission>),
    Flush(TenantId),
}

/// Cloneable producer handle for one tenant. Every clone feeds the same
/// driver loop; dropping the last handle (and the [`ServerClient`])
/// flushes pending batches and shuts the server down.
#[derive(Clone)]
pub struct TenantHandle {
    tenant: TenantId,
    tx: Sender<Msg>,
    gate: Arc<TenantGate>,
    obs: Recorder,
}

impl TenantHandle {
    /// Submit with default priority (128) and no deadline.
    pub fn submit(&self, kind: RequestKind) -> Result<Ticket, QueueFull> {
        self.submit_with(kind, 128, None)
    }

    /// Submit with explicit priority (lower runs earlier) and optional
    /// deadline. `Unroute`/`Replace` victims are named by the
    /// [`Ticket::id`] of this tenant's earlier admissions. Fails
    /// synchronously with [`QueueFull`] when the tenant's admission gate
    /// is at capacity.
    pub fn submit_with(
        &self,
        kind: RequestKind,
        priority: u8,
        deadline: Option<Deadline>,
    ) -> Result<Ticket, QueueFull> {
        let seq = self.gate.admit()?;
        let cancel = Arc::new(AtomicBool::new(false));
        let state = Arc::new(TicketState::default());
        let sub = Submission {
            tenant: self.tenant,
            seq,
            kind,
            priority,
            deadline,
            cancel: Arc::clone(&cancel),
            ticket: Arc::clone(&state),
            submitted_ns: self.obs.elapsed_ns(),
        };
        self.tx
            .send(Msg::Submit(Box::new(sub)))
            .expect("server driver alive while handles exist");
        Ok(Ticket {
            id: seq,
            tenant: self.tenant,
            cancel,
            state,
        })
    }

    /// Cut this tenant's forming batch now, regardless of watermarks.
    pub fn flush(&self) {
        self.tx
            .send(Msg::Flush(self.tenant))
            .expect("server driver alive while handles exist");
    }
}

/// Client-side root handle: mints per-tenant producer handles. Held by
/// the `serve` closure; when the closure returns (dropping this and all
/// [`TenantHandle`] clones), the server flushes and shuts down.
pub struct ServerClient {
    tx: Sender<Msg>,
    gates: Vec<Arc<TenantGate>>,
    obs: Recorder,
}

impl ServerClient {
    /// Number of tenants behind the server.
    pub fn tenants(&self) -> usize {
        self.gates.len()
    }

    /// Producer handle for tenant `tenant`. Panics on an out-of-range
    /// tenant.
    pub fn tenant(&self, tenant: TenantId) -> TenantHandle {
        let gate = Arc::clone(&self.gates[usize::from(tenant)]);
        TenantHandle {
            tenant,
            tx: self.tx.clone(),
            gate,
            obs: self.obs.clone(),
        }
    }
}

// ----------------------------------------------------------------------
// Reports
// ----------------------------------------------------------------------

/// One completion in a tenant's replayable log, in server terms: the
/// admission id (not the internal service [`RequestId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerLogEntry {
    /// 0-based batch index within the tenant.
    pub batch: u64,
    /// Completion step within the batch (the service's replay clock).
    pub step: u64,
    /// Worker that finished the request.
    pub worker: usize,
    /// The admission ([`Ticket::id`]).
    pub seq: u64,
    /// Whether the finishing worker stole the task.
    pub stolen: bool,
}

/// Everything one tenant's executor did over the server's lifetime.
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Batches executed.
    pub batches: u64,
    /// Whether a fault poisoned this tenant (see [`ServerOutcome::Poisoned`]).
    pub poisoned: bool,
    /// Terminal outcome per admission, sorted by admission id.
    pub outcomes: Vec<(u64, ServerOutcome)>,
    /// Completions across all batches in execution order — replay the
    /// successful entries through
    /// [`SequentialModel`](crate::model::SequentialModel) to reproduce
    /// `census`.
    pub log: Vec<ServerLogEntry>,
    /// Summed claim-audit disagreements across batches (`Some(0)` =
    /// clean; `None` when audits were off).
    pub leaked_claims: Option<usize>,
    /// Final `(segment, net)` census of the tenant's [`NetDb`] shard.
    pub census: Vec<(Segment, NetId)>,
}

impl TenantReport {
    /// Outcome of one admission, if it reached this tenant.
    pub fn outcome(&self, seq: u64) -> Option<&ServerOutcome> {
        self.outcomes
            .binary_search_by_key(&seq, |&(s, _)| s)
            .ok()
            .map(|i| &self.outcomes[i].1)
    }
}

/// Everything the server did: one report per tenant plus the rolling
/// per-batch telemetry window (when the recorder was enabled).
#[derive(Debug)]
pub struct ServerReport {
    /// Per-tenant reports, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
    /// Rolling window over the per-tenant labelled families, ticked once
    /// per dispatched batch.
    pub window: Option<Aggregator>,
}

// ----------------------------------------------------------------------
// The server
// ----------------------------------------------------------------------

/// How many per-batch samples the server's rolling window retains.
const WINDOW_SAMPLES: usize = 256;

/// Executor-side per-tenant meters (labelled families).
struct ExecMeters {
    completed: Counter,
    batches: Counter,
    request_ns: Histo,
}

/// Run a multi-tenant routing server over `devices` (one tenant per
/// device, tenant `t` = `devices[t]`) and hand the client closure its
/// [`ServerClient`]. The server runs for exactly the closure's lifetime:
/// when it returns, pending batches flush, outstanding requests
/// complete, and the per-tenant reports come back with the closure's
/// result.
///
/// The closure runs on the calling thread; driver and tenant executors
/// run on scoped threads behind it. Producer handles are `Clone + Send`,
/// so the closure may fan submissions out across its own threads.
///
/// # Panics
///
/// Panics if `devices` is empty or holds more than `u16::MAX` tenants.
pub fn serve<R>(
    devices: &[&Device],
    cfg: ServerConfig,
    obs: Recorder,
    client: impl FnOnce(&ServerClient) -> R,
) -> (R, ServerReport) {
    assert!(!devices.is_empty(), "server needs at least one tenant");
    assert!(devices.len() <= usize::from(u16::MAX), "too many tenants");
    let budget = Arc::new(ThreadBudget::new(cfg.threads));
    let gates: Vec<Arc<TenantGate>> = (0..devices.len())
        .map(|t| {
            Arc::new(TenantGate {
                capacity: cfg.queue_capacity.max(1),
                depth: AtomicUsize::new(0),
                next_seq: AtomicU64::new(0),
                depth_gauge: obs.gauge(&labeled("svc.server.queue_depth", "tenant", t)),
                submitted: obs.counter(&labeled("svc.server.submitted", "tenant", t)),
                queue_full: obs.counter(&labeled("svc.server.queue_full", "tenant", t)),
            })
        })
        .collect();
    let window = obs.is_enabled().then(|| {
        let mut w = Aggregator::new(WINDOW_SAMPLES);
        for t in 0..devices.len() {
            let depth = labeled("svc.server.queue_depth", "tenant", t);
            w.track_gauge(depth.clone(), obs.gauge(&depth));
            for name in [
                "svc.server.submitted",
                "svc.server.completed",
                "svc.server.batches",
                "svc.server.queue_full",
            ] {
                w.track_counter(
                    labeled(name, "tenant", t),
                    obs.counter(&labeled(name, "tenant", t)),
                );
            }
            w.track_histogram(
                labeled("svc.server.request_ns", "tenant", t),
                obs.histogram(&labeled("svc.server.request_ns", "tenant", t)),
            );
        }
        w
    });

    std::thread::scope(|scope| {
        let mut exec_txs: Vec<Sender<Vec<Submission>>> = Vec::with_capacity(devices.len());
        let mut exec_joins = Vec::with_capacity(devices.len());
        for (t, &dev) in devices.iter().enumerate() {
            let (tx, rx) = channel::<Vec<Submission>>();
            exec_txs.push(tx);
            let tenant = t as TenantId;
            let (cfg, obs, gate, budget) = (
                cfg.clone(),
                obs.clone(),
                Arc::clone(&gates[t]),
                Arc::clone(&budget),
            );
            exec_joins
                .push(scope.spawn(move || executor_loop(tenant, dev, rx, cfg, obs, gate, budget)));
        }
        let (tx, rx) = channel::<Msg>();
        let driver = {
            let (cfg, obs) = (cfg.clone(), obs.clone());
            scope.spawn(move || driver_loop(rx, exec_txs, cfg, obs, window))
        };
        let handle = ServerClient {
            tx,
            gates,
            obs: obs.clone(),
        };
        let result = client(&handle);
        drop(handle);
        let mut window = driver.join().expect("server driver never panics");
        let tenants: Vec<TenantReport> = exec_joins
            .into_iter()
            .map(|j| j.join().expect("tenant executor loop never panics"))
            .collect();
        // Final sample after every executor has drained, so the last
        // window entry reflects the complete run (the driver's ticks
        // race against executor completions by design).
        if let Some(w) = window.as_mut() {
            w.tick(obs.elapsed_ns());
        }
        (result, ServerReport { tenants, window })
    })
}

/// The driver loop: owns the logical clock (admissions processed), the
/// per-tenant batch formers and the telemetry window. Deterministic mode
/// blocks on the channel — batch boundaries depend only on the admission
/// sequence; threaded mode adds an idle-timeout flush so a quiet server
/// drains without waiting for watermarks.
fn driver_loop(
    rx: Receiver<Msg>,
    exec_txs: Vec<Sender<Vec<Submission>>>,
    cfg: ServerConfig,
    obs: Recorder,
    mut window: Option<Aggregator>,
) -> Option<Aggregator> {
    let deterministic = matches!(cfg.mode, ExecMode::Deterministic { .. });
    let mut formers: Vec<BatchFormer<Submission>> = (0..exec_txs.len())
        .map(|_| BatchFormer::new(cfg.batch_max, cfg.batch_wait))
        .collect();
    let mut step: u64 = 0;
    let dispatch = |t: usize, batch: Vec<Submission>, window: &mut Option<Aggregator>| {
        // A dead executor is impossible (its loop catches panics), but
        // be safe: an unsent batch would strand tickets forever.
        exec_txs[t].send(batch).expect("tenant executor alive");
        if let Some(w) = window.as_mut() {
            w.tick(obs.elapsed_ns());
        }
    };
    loop {
        let msg = if deterministic {
            rx.recv().ok()
        } else {
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => {
                    // Idle wall-clock flush: logical time is frozen while
                    // no admissions arrive, so age watermarks alone would
                    // strand a partial batch.
                    for (t, former) in formers.iter_mut().enumerate() {
                        if let Some(batch) = former.flush() {
                            dispatch(t, batch, &mut window);
                        }
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => None,
            }
        };
        match msg {
            Some(Msg::Submit(sub)) => {
                step += 1;
                let t = usize::from(sub.tenant);
                if let Some(batch) = formers[t].push(step, *sub) {
                    dispatch(t, batch, &mut window);
                }
                for (u, former) in formers.iter_mut().enumerate() {
                    if former.due(step) {
                        if let Some(batch) = former.flush() {
                            dispatch(u, batch, &mut window);
                        }
                    }
                }
            }
            Some(Msg::Flush(tenant)) => {
                if let Some(batch) = formers[usize::from(tenant)].flush() {
                    dispatch(usize::from(tenant), batch, &mut window);
                }
            }
            None => {
                // Every producer handle dropped: flush what formed and
                // shut down (dropping exec_txs ends the executors).
                for (t, former) in formers.iter_mut().enumerate() {
                    if let Some(batch) = former.flush() {
                        dispatch(t, batch, &mut window);
                    }
                }
                return window;
            }
        }
    }
}

/// One tenant's executor: owns the tenant's [`RoutingService`] (and
/// therefore its `NetDb` shard), translates admission ids to service
/// request ids, and contains faults to the batch that raised them.
fn executor_loop(
    tenant: TenantId,
    dev: &Device,
    rx: Receiver<Vec<Submission>>,
    cfg: ServerConfig,
    obs: Recorder,
    gate: Arc<TenantGate>,
    budget: Arc<ThreadBudget>,
) -> TenantReport {
    let deterministic = matches!(cfg.mode, ExecMode::Deterministic { .. });
    let mut svc =
        RoutingService::with_recorder(dev, tenant_service_config(&cfg, tenant), obs.clone());
    let meters = ExecMeters {
        completed: obs.counter(&labeled("svc.server.completed", "tenant", tenant)),
        batches: obs.counter(&labeled("svc.server.batches", "tenant", tenant)),
        request_ns: obs.histogram(&labeled("svc.server.request_ns", "tenant", tenant)),
    };
    let mut seq_to_req: HashMap<u64, RequestId> = HashMap::new();
    let mut outcomes: Vec<(u64, ServerOutcome)> = Vec::new();
    let mut log: Vec<ServerLogEntry> = Vec::new();
    let mut leaked: Option<usize> = cfg.audit.then_some(0);
    let mut poisoned = false;
    let mut batches: u64 = 0;

    while let Ok(batch) = rx.recv() {
        if poisoned {
            for sub in batch {
                finish(
                    &gate,
                    &meters,
                    &obs,
                    &sub,
                    ServerOutcome::Poisoned,
                    &mut outcomes,
                );
            }
            continue;
        }
        let batch_idx = batches;
        batches += 1;
        meters.batches.inc();
        // Threaded mode leases width from the shared pool for the span
        // of this batch; deterministic mode keeps its fixed topology
        // (the lease would change results).
        let lease = (!deterministic).then(|| budget.lease(cfg.tenant_threads.max(1)));
        if let Some(lease) = &lease {
            svc.set_threads(lease.granted());
        }
        let ran = catch_unwind(AssertUnwindSafe(|| {
            let mut ids = Vec::with_capacity(batch.len());
            for sub in &batch {
                if let Some((ft, fs)) = cfg.fault.panic_on {
                    if ft == tenant && fs == sub.seq {
                        panic!("injected fault: tenant {ft} admission {fs}");
                    }
                }
                let kind = translate(&sub.kind, &seq_to_req);
                let id = svc
                    .submit_injected(kind, sub.priority, sub.deadline, Arc::clone(&sub.cancel))
                    .expect("a cut batch fits the tenant service queue");
                ids.push(id);
            }
            let report = svc.run_batch();
            (ids, report)
        }));
        drop(lease);
        match ran {
            Ok((ids, report)) => {
                let req_to_seq: HashMap<RequestId, u64> = ids
                    .iter()
                    .zip(&batch)
                    .map(|(&id, sub)| (id, sub.seq))
                    .collect();
                for entry in &report.log {
                    log.push(ServerLogEntry {
                        batch: batch_idx,
                        step: entry.step,
                        worker: entry.worker,
                        seq: req_to_seq[&entry.request],
                        stolen: entry.stolen,
                    });
                }
                if let (Some(total), Some(found)) = (leaked.as_mut(), report.leaked_claims) {
                    *total += found;
                }
                for (sub, &id) in batch.iter().zip(&ids) {
                    seq_to_req.insert(sub.seq, id);
                    let outcome = report
                        .outcome(id)
                        .expect("one outcome per drained request")
                        .clone();
                    finish(
                        &gate,
                        &meters,
                        &obs,
                        sub,
                        ServerOutcome::Done(outcome),
                        &mut outcomes,
                    );
                }
            }
            Err(_) => {
                // The batch died mid-flight: its service state is
                // untrusted, so retire the whole tenant. Everything in
                // this batch — and every later admission — resolves
                // Poisoned; other tenants are unaffected.
                poisoned = true;
                for sub in &batch {
                    finish(
                        &gate,
                        &meters,
                        &obs,
                        sub,
                        ServerOutcome::Poisoned,
                        &mut outcomes,
                    );
                }
            }
        }
    }
    outcomes.sort_by_key(|&(seq, _)| seq);
    TenantReport {
        tenant,
        batches,
        poisoned,
        outcomes,
        log,
        leaked_claims: if poisoned { None } else { leaked },
        census: svc.db().census(),
    }
}

/// Resolve a terminal outcome: fulfill the ticket, release the admission
/// slot, record latency.
fn finish(
    gate: &TenantGate,
    meters: &ExecMeters,
    obs: &Recorder,
    sub: &Submission,
    outcome: ServerOutcome,
    outcomes: &mut Vec<(u64, ServerOutcome)>,
) {
    meters.completed.inc();
    meters
        .request_ns
        .record(obs.elapsed_ns().saturating_sub(sub.submitted_ns));
    outcomes.push((sub.seq, outcome.clone()));
    sub.ticket.fulfill(outcome);
    gate.release();
}

/// Translate a client kind (victims = admission ids) into a service kind
/// (victims = the tenant service's request ids). An unknown admission id
/// maps to a reserved never-issued request id, so the service rejects it
/// as `UnknownTarget` — the same terminal path as a stale victim.
fn translate(kind: &RequestKind, seq_to_req: &HashMap<u64, RequestId>) -> RequestKind {
    let lookup = |seq: &u64| seq_to_req.get(seq).copied().unwrap_or(u64::MAX);
    match kind {
        RequestKind::Route(spec) => RequestKind::Route(spec.clone()),
        RequestKind::Unroute(seq) => RequestKind::Unroute(lookup(seq)),
        RequestKind::Replace { remove, add } => RequestKind::Replace {
            remove: remove.iter().map(lookup).collect(),
            add: add.clone(),
        },
    }
}

// ----------------------------------------------------------------------
// Trace replay
// ----------------------------------------------------------------------

/// Replay a (possibly multi-tenant) recorded [`Trace`] through a server
/// over `devices`, preserving the recorded batch boundaries exactly:
/// watermark cuts are disabled, each recorded batch is flushed and
/// barriered before the next is submitted. In deterministic mode the
/// result is bit-replayable — identical per-tenant censuses — for any
/// [`ServerConfig::threads`].
///
/// Victims are recorded as global trace ids; they are translated to the
/// victim's per-tenant admission id here, so a trace request may only
/// name victims of its own tenant ([`Trace::validate`] enforces this).
pub fn replay_trace(
    devices: &[&Device],
    cfg: &ServerConfig,
    obs: Recorder,
    trace: &Trace,
) -> Result<ServerReport, TraceError> {
    trace.validate()?;
    if let Some(fam) = trace.family {
        for dev in devices {
            if dev.family() != fam {
                return Err(TraceError::FamilyMismatch {
                    trace: fam,
                    device: dev.family(),
                });
            }
        }
    }
    let cfg = ServerConfig {
        batch_max: usize::MAX,
        batch_wait: u64::MAX,
        ..cfg.clone()
    };
    let (result, report) = serve(devices, cfg, obs, |client| {
        // Global trace id -> (tenant, per-tenant admission id).
        let mut admitted: Vec<(TenantId, u64)> = Vec::new();
        let handles: Vec<TenantHandle> = (0..devices.len())
            .map(|t| client.tenant(t as TenantId))
            .collect();
        for batch in &trace.batches {
            let mut tickets = Vec::with_capacity(batch.len());
            for req in batch {
                let tenant = usize::from(req.tenant);
                if tenant >= handles.len() {
                    return Err(TraceError::UnknownTenant(req.tenant));
                }
                let victim = |tid: &crate::trace::TraceId| admitted[*tid as usize].1;
                let kind = match &req.op {
                    TraceOp::Route(spec) => RequestKind::Route(spec.clone()),
                    TraceOp::Unroute(tid) => RequestKind::Unroute(victim(tid)),
                    TraceOp::Replace { remove, add } => RequestKind::Replace {
                        remove: remove.iter().map(victim).collect(),
                        add: add.clone(),
                    },
                };
                let deadline = req.deadline.map(Deadline::Steps);
                let ticket = handles[tenant]
                    .submit_with(kind, req.priority, deadline)
                    .map_err(|_| TraceError::QueueFull)?;
                admitted.push((req.tenant, ticket.id()));
                tickets.push(ticket);
            }
            // Recorded batch boundary: cut everything submitted, then
            // barrier on it so the next recorded batch lands in the next
            // service batch.
            for handle in &handles {
                handle.flush();
            }
            for ticket in &tickets {
                ticket.wait();
            }
        }
        Ok(())
    });
    result?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jroute::pathfinder::NetSpec;
    use jroute::Pin;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn det_cfg(seed: u64) -> ServerConfig {
        ServerConfig {
            threads: 4,
            tenant_threads: 2,
            mode: ExecMode::Deterministic { seed },
            audit: true,
            ..Default::default()
        }
    }

    /// Distinct nets in a census (census rows are per *segment*).
    fn nets(census: &[(virtex::Segment, jroute::NetId)]) -> Vec<jroute::NetId> {
        let mut ids: Vec<_> = census.iter().map(|&(_, n)| n).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn spec(i: usize) -> NetSpec {
        let r = (2 + (i * 3) % 12) as u16;
        let c = (2 + (i * 5) % 16) as u16;
        NetSpec::new(
            Pin::new(r, c, wire::S0_YQ),
            vec![Pin::new(r + 2, c + 4, wire::S0_F3)],
        )
    }

    #[test]
    fn routes_across_tenants_and_isolates_shards() {
        let (d0, d1) = (dev(), dev());
        let ((), report) = serve(&[&d0, &d1], det_cfg(1), Recorder::disabled(), |client| {
            let a = client.tenant(0);
            let b = client.tenant(1);
            let ta = a.submit(RequestKind::Route(spec(0))).unwrap();
            let tb = b.submit(RequestKind::Route(spec(1))).unwrap();
            a.flush();
            b.flush();
            assert!(ta.wait().is_success());
            assert!(tb.wait().is_success());
        });
        assert_eq!(report.tenants.len(), 2);
        for t in &report.tenants {
            assert_eq!(nets(&t.census).len(), 1, "one net per tenant shard");
            assert_eq!(t.leaked_claims, Some(0));
            assert!(!t.poisoned);
        }
        // Shards are independent: both tenants routed the *first* net of
        // their own service, so NetIds restart per shard.
        assert_eq!(
            nets(&report.tenants[0].census),
            nets(&report.tenants[1].census)
        );
    }

    #[test]
    fn unroute_names_victims_by_admission_id() {
        let d = dev();
        let ((), report) = serve(&[&d], det_cfg(2), Recorder::disabled(), |client| {
            let h = client.tenant(0);
            let route = h.submit(RequestKind::Route(spec(0))).unwrap();
            h.flush();
            assert!(route.wait().is_success());
            let un = h.submit(RequestKind::Unroute(route.id())).unwrap();
            h.flush();
            assert!(un.wait().is_success());
        });
        assert!(report.tenants[0].census.is_empty(), "net unrouted");
        assert_eq!(report.tenants[0].leaked_claims, Some(0));
    }

    #[test]
    fn size_watermark_cuts_without_flush() {
        let d = dev();
        let cfg = ServerConfig {
            batch_max: 2,
            ..det_cfg(3)
        };
        let ((), report) = serve(&[&d], cfg, Recorder::disabled(), |client| {
            let h = client.tenant(0);
            let a = h.submit(RequestKind::Route(spec(0))).unwrap();
            let b = h.submit(RequestKind::Route(spec(1))).unwrap();
            // No flush: the second admission fills the batch.
            assert!(a.wait().is_success());
            assert!(b.wait().is_success());
        });
        assert_eq!(report.tenants[0].batches, 1);
    }

    #[test]
    fn age_watermark_cuts_on_later_admissions() {
        let (d0, d1) = (dev(), dev());
        let cfg = ServerConfig {
            batch_max: 100,
            batch_wait: 2,
            ..det_cfg(4)
        };
        let ((), report) = serve(&[&d0, &d1], cfg, Recorder::disabled(), |client| {
            let a = client.tenant(0);
            let b = client.tenant(1);
            let t = a.submit(RequestKind::Route(spec(0))).unwrap();
            // Tenant 1 admissions advance the logical clock past tenant
            // 0's age watermark.
            for i in 1..5 {
                b.submit(RequestKind::Route(spec(i))).unwrap();
            }
            assert!(t.wait().is_success(), "cut by age, not flush");
            b.flush();
        });
        assert_eq!(report.tenants[0].batches, 1);
    }

    #[test]
    fn queue_full_round_trips_and_recovers() {
        let d = dev();
        let cfg = ServerConfig {
            queue_capacity: 2,
            batch_max: 100,
            ..det_cfg(5)
        };
        let ((), report) = serve(&[&d], cfg, Recorder::disabled(), |client| {
            let h = client.tenant(0);
            let a = h.submit(RequestKind::Route(spec(0))).unwrap();
            let b = h.submit(RequestKind::Route(spec(1))).unwrap();
            let err = h.submit(RequestKind::Route(spec(2))).unwrap_err();
            assert_eq!(err, QueueFull { capacity: 2 });
            h.flush();
            assert!(a.wait().is_success());
            assert!(b.wait().is_success());
            // Terminal outcomes drained the gate: capacity is back.
            let c = h.submit(RequestKind::Route(spec(2))).unwrap();
            h.flush();
            assert!(c.wait().is_success());
        });
        assert_eq!(report.tenants[0].outcomes.len(), 3);
    }

    #[test]
    fn cancelling_a_queued_unbatched_request_resolves_cancelled() {
        let d = dev();
        let cfg = ServerConfig {
            batch_max: 100,
            ..det_cfg(6)
        };
        let ((), report) = serve(&[&d], cfg, Recorder::disabled(), |client| {
            let h = client.tenant(0);
            let t = h.submit(RequestKind::Route(spec(0))).unwrap();
            // Cancel while the request sits in the driver's forming
            // batch — before any service has seen it.
            t.cancel_token().cancel();
            h.flush();
            assert_eq!(t.wait(), ServerOutcome::Done(RequestOutcome::Cancelled));
        });
        assert!(report.tenants[0].census.is_empty());
        assert_eq!(report.tenants[0].leaked_claims, Some(0));
    }

    #[test]
    fn dropped_producer_handle_flushes_in_flight_requests() {
        let d = dev();
        let cfg = ServerConfig {
            batch_max: 100,
            ..det_cfg(7)
        };
        let (seq, report) = serve(&[&d], cfg, Recorder::disabled(), |client| {
            let h = client.tenant(0);
            let t = h.submit(RequestKind::Route(spec(0))).unwrap();
            // Drop every handle without flushing: the disconnect flush
            // must still run the request to a terminal outcome.
            t.id()
        });
        assert_eq!(
            report.tenants[0].outcome(seq).map(|o| o.is_success()),
            Some(true),
            "in-flight request completed on shutdown"
        );
    }

    #[test]
    fn worker_panic_poisons_the_tenant_but_not_the_server() {
        let (d0, d1) = (dev(), dev());
        let cfg = ServerConfig {
            batch_max: 2,
            fault: FaultPlan {
                panic_on: Some((0, 1)),
            },
            ..det_cfg(8)
        };
        let ((), report) = serve(&[&d0, &d1], cfg, Recorder::disabled(), |client| {
            let a = client.tenant(0);
            let b = client.tenant(1);
            // Admissions 0 and 1 form tenant 0's batch; the fault fires
            // while admission 1 is fed — mid-batch.
            let t0 = a.submit(RequestKind::Route(spec(0))).unwrap();
            let t1 = a.submit(RequestKind::Route(spec(1))).unwrap();
            assert_eq!(t0.wait(), ServerOutcome::Poisoned);
            assert_eq!(t1.wait(), ServerOutcome::Poisoned);
            // The poisoned tenant answers later admissions too...
            let t2 = a.submit(RequestKind::Route(spec(2))).unwrap();
            a.flush();
            assert_eq!(t2.wait(), ServerOutcome::Poisoned);
            // ...while the healthy tenant keeps serving.
            let tb = b.submit(RequestKind::Route(spec(3))).unwrap();
            b.flush();
            assert!(tb.wait().is_success());
        });
        assert!(report.tenants[0].poisoned);
        assert!(!report.tenants[1].poisoned);
        assert_eq!(nets(&report.tenants[1].census).len(), 1);
        assert_eq!(report.tenants[1].leaked_claims, Some(0));
    }

    #[test]
    fn per_tenant_metrics_flow_to_window_and_prometheus() {
        let d0 = dev();
        let d1 = dev();
        let obs = Recorder::enabled();
        let ((), report) = serve(&[&d0, &d1], det_cfg(9), obs.clone(), |client| {
            for t in 0..2 {
                let h = client.tenant(t);
                let ticket = h.submit(RequestKind::Route(spec(t as usize))).unwrap();
                h.flush();
                assert!(ticket.wait().is_success());
            }
        });
        let window = report.window.expect("enabled recorder has a window");
        assert!(!window.is_empty());
        // Counter series are windowed deltas; summed over all samples
        // they recover the per-tenant total.
        let series = format!("{}.delta", labeled("svc.server.completed", "tenant", 1));
        let total: f64 = window.samples().filter_map(|s| s.value(&series)).sum();
        assert_eq!(total, 1.0);
        let text = jroute_obs::prometheus_text(&obs.report());
        assert!(text.contains("jroute_svc_server_submitted{tenant=\"0\"} 1"));
        assert!(text.contains("jroute_svc_server_submitted{tenant=\"1\"} 1"));
        assert!(text.contains("jroute_svc_server_request_ns{tenant=\"0\",quantile=\"0.99\"}"));
    }

    #[test]
    fn deterministic_replay_is_identical_across_pool_widths() {
        let (d0, d1) = (dev(), dev());
        let run = |pool: usize| {
            let cfg = ServerConfig {
                threads: pool,
                ..det_cfg(0xFEED)
            };
            let ((), report) = serve(&[&d0, &d1], cfg, Recorder::disabled(), |client| {
                for i in 0..6 {
                    let h = client.tenant((i % 2) as TenantId);
                    h.submit(RequestKind::Route(spec(i))).unwrap();
                }
                for t in 0..2 {
                    client.tenant(t).flush();
                }
            });
            report
                .tenants
                .into_iter()
                .map(|t| (t.census, t.log))
                .collect::<Vec<_>>()
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(8));
    }
}
