//! Request and outcome vocabulary of the routing service.

use jroute::pathfinder::NetSpec;
use jroute::NetId;
use jroute_obs::TraceCtx;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Service-assigned request identifier, unique for the life of one
/// [`RoutingService`](crate::RoutingService). `Unroute`/`Replace`
/// requests name their victims by the id of the request that routed
/// them.
pub type RequestId = u64;

/// Tenant identifier in the multi-tenant server front-end
/// ([`server`](crate::server)): an index into the server's device list.
/// Tenant 0 is the implicit tenant of every single-tenant artifact —
/// legacy `.jrt` traces load as tenant 0.
pub type TenantId = u16;

/// What a request asks the service to do.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Route one net (source plus one or more sinks).
    Route(NetSpec),
    /// Remove every net routed by an earlier, committed request.
    Unroute(RequestId),
    /// Atomically remove the nets of earlier requests and route
    /// replacements over the freed resources — the §5 "replace a core
    /// while the design runs" operation as one request. Either all of
    /// `add` routes (and the removals stick), or the whole request rolls
    /// back and the victims keep their resources.
    Replace {
        /// Committed route requests whose nets are torn down.
        remove: Vec<RequestId>,
        /// Replacement nets routed over the freed (and any other
        /// available) resources.
        add: Vec<NetSpec>,
    },
}

/// When a request stops being worth finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Expires once the batch has *completed* this many requests. The
    /// step clock is part of the replayable schedule, so this is the
    /// deadline form deterministic mode honours.
    Steps(u64),
    /// Expires this long after `run_batch` starts (wall clock). Only
    /// meaningful in threaded mode; deterministic mode treats it as
    /// unbounded, because reading a real clock would make the schedule
    /// unreplayable.
    Elapsed(Duration),
}

/// One queued request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Service-assigned id.
    pub id: RequestId,
    /// Scheduling priority; lower values run earlier (0 = most urgent).
    pub priority: u8,
    /// Optional expiry.
    pub deadline: Option<Deadline>,
    /// The operation.
    pub kind: RequestKind,
    /// Submission order, the tiebreak within a priority class.
    pub(crate) seq: u64,
    /// Shared cancellation flag (see [`CancelToken`]).
    pub(crate) cancel: Arc<AtomicBool>,
    /// Causal trace context minted at submission (the `svc.request` root
    /// span). Carried through queueing, stealing, retry parking and
    /// `Replace` chain-transfers so every exec/maze span links back to
    /// the originating submission.
    pub(crate) ctx: TraceCtx,
}

impl Request {
    /// Whether the request has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

/// Cloneable handle that cancels one request from any thread, including
/// while a batch is running: the routing step polls the flag on every
/// search probe and rolls the request's claims back.
#[derive(Debug, Clone)]
pub struct CancelToken(pub(crate) Arc<AtomicBool>);

impl CancelToken {
    /// Request cancellation. Idempotent; takes effect at the next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Why a request was refused without being scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// An `Unroute`/`Replace` victim id is unknown, not yet committed,
    /// or already targeted by an earlier request in the same batch.
    UnknownTarget(RequestId),
    /// A net spec names a wire that does not exist on the device.
    BadWire,
}

/// Final status of one request after a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The net was routed and committed.
    Routed {
        /// Net created in the service's [`NetDb`](jroute::NetDb).
        net: NetId,
        /// Segments the net occupies.
        segments: usize,
    },
    /// The victims' nets were removed.
    Unrouted {
        /// Nets removed.
        nets: Vec<NetId>,
    },
    /// Victims removed and replacements routed.
    Replaced {
        /// Nets removed.
        removed: Vec<NetId>,
        /// Nets created, one per `add` spec in order.
        added: Vec<NetId>,
    },
    /// Cancelled via [`CancelToken`] before or during execution; any
    /// claims made were rolled back.
    Cancelled,
    /// The deadline expired before or during execution; any claims made
    /// were rolled back.
    Expired,
    /// Every attempt lost its resources to competing requests (or no
    /// route existed under the committed state); gave up after
    /// `attempts` tries.
    Congested {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Refused without scheduling.
    Rejected(Reject),
}

impl RequestOutcome {
    /// Whether the request changed the committed state.
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            RequestOutcome::Routed { .. }
                | RequestOutcome::Unrouted { .. }
                | RequestOutcome::Replaced { .. }
        )
    }
}

/// Backpressure error: the bounded submission queue is full. Run a batch
/// (or cancel queued work) before submitting more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The queue's capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submission queue full ({} requests); run a batch to drain it",
            self.capacity
        )
    }
}

impl std::error::Error for QueueFull {}

/// One completed request in schedule order — the replayable log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Completion step (0-based, dense within the batch).
    pub step: u64,
    /// Worker that finished the request.
    pub worker: usize,
    /// The request.
    pub request: RequestId,
    /// Whether the finishing worker obtained the task by stealing.
    pub stolen: bool,
}

/// Everything `run_batch` did.
#[derive(Debug)]
pub struct BatchReport {
    /// Final outcome per request, sorted by request id.
    pub outcomes: Vec<(RequestId, RequestOutcome)>,
    /// Completions in schedule order — feed the successful entries to
    /// [`SequentialModel`](crate::model::SequentialModel) to replay the
    /// batch.
    pub log: Vec<LogEntry>,
    /// Task executions, including retries of deferred requests.
    pub executed: u64,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
    /// Deferred-and-requeued executions.
    pub retries: u64,
    /// When [`ServiceConfig::audit`](crate::ServiceConfig) is set: the
    /// number of claim-table slots that disagree with the net database
    /// after the batch (must be 0 — anything else is a leaked or lost
    /// claim).
    pub leaked_claims: Option<usize>,
}

impl BatchReport {
    /// Outcome of one request, if it was part of this batch.
    pub fn outcome(&self, id: RequestId) -> Option<&RequestOutcome> {
        self.outcomes
            .binary_search_by_key(&id, |&(rid, _)| rid)
            .ok()
            .map(|i| &self.outcomes[i].1)
    }
}
