//! The dense canonical-segment index space and its typed maps.
//!
//! Routing state is a property of *canonical segments* ([`Segment`]), and
//! every hot router structure (occupancy, congestion, search scratch,
//! claim tables) ultimately wants O(1) per-segment storage. The segment
//! space of a device is finite and known up front — `dims.tiles() *`
//! [`NUM_LOCAL_WIRES`] slots — so sparse `HashMap<Segment, _>` keying
//! costs hashing and probing for no benefit. This module is the shared
//! substrate those layers build on:
//!
//! * [`SegSpace`] — the bijection between canonical segments and dense
//!   indices, derived from the device geometry (the architecture class of
//!   paper §2/§5 is the only thing that knows which slots denote real
//!   wires);
//! * [`SegIdx`] — a typed dense index, so segment indices cannot be
//!   confused with tile indices or net ids;
//! * [`SegVec`] — a typed dense map `SegIdx -> T`;
//! * [`StampedSegVec`] — the epoch-stamped variant whose `clear` is O(1),
//!   for per-search / per-iteration scratch that is reset far more often
//!   than it is fully written.

use crate::geometry::Dims;
use crate::segment::Segment;
use crate::wire::NUM_LOCAL_WIRES;

/// Dense index of a canonical segment within a [`SegSpace`].
///
/// Only meaningful together with the space that produced it; indices from
/// different devices must not be mixed (debug builds catch out-of-range
/// use through slice bounds checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegIdx(pub u32);

impl SegIdx {
    /// The index as a `usize`, for slice addressing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// The dense canonical-segment index space of one device: a cheap,
/// copyable bijection `Segment <-> SegIdx` derived from [`Dims`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegSpace {
    dims: Dims,
}

impl SegSpace {
    /// Segment space of a `dims`-sized device.
    #[inline]
    pub const fn new(dims: Dims) -> Self {
        SegSpace { dims }
    }

    /// The device geometry this space is derived from.
    #[inline]
    pub const fn dims(self) -> Dims {
        self.dims
    }

    /// Number of slots (`dims.tiles() * NUM_LOCAL_WIRES`). Slots whose
    /// local name does not denote an existing canonical resource are
    /// simply never indexed.
    #[inline]
    pub const fn len(self) -> usize {
        self.dims.tiles() * NUM_LOCAL_WIRES
    }

    /// Whether the space has no slots (a zero-dimension device).
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Dense index of a canonical segment.
    #[inline]
    pub fn index(self, seg: Segment) -> SegIdx {
        SegIdx(seg.index(self.dims) as u32)
    }

    /// Inverse of [`SegSpace::index`]. Only meaningful for indices
    /// produced from canonical segments of the same space.
    #[inline]
    pub fn segment(self, idx: SegIdx) -> Segment {
        Segment::from_index(idx.as_usize(), self.dims)
    }
}

/// A typed dense map `SegIdx -> T` over one [`SegSpace`].
#[derive(Debug, Clone)]
pub struct SegVec<T> {
    space: SegSpace,
    data: Vec<T>,
}

impl<T> SegVec<T> {
    /// Map with every slot set to `fill`.
    pub fn new(space: SegSpace, fill: T) -> Self
    where
        T: Clone,
    {
        SegVec {
            space,
            data: vec![fill; space.len()],
        }
    }

    /// Map with every slot produced by `f` (for non-`Clone` cell types
    /// such as atomics).
    pub fn from_fn(space: SegSpace, f: impl FnMut() -> T) -> Self {
        let mut f = f;
        SegVec {
            space,
            data: (0..space.len()).map(|_| f()).collect(),
        }
    }

    /// The space this map covers.
    #[inline]
    pub fn space(&self) -> SegSpace {
        self.space
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterate all slots as `(SegIdx, &T)`.
    pub fn iter(&self) -> impl Iterator<Item = (SegIdx, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| (SegIdx(i as u32), v))
    }

    /// Overwrite every slot with `value`.
    pub fn fill(&mut self, value: T)
    where
        T: Clone,
    {
        self.data.fill(value);
    }
}

impl<T> std::ops::Index<SegIdx> for SegVec<T> {
    type Output = T;

    #[inline]
    fn index(&self, idx: SegIdx) -> &T {
        &self.data[idx.as_usize()]
    }
}

impl<T> std::ops::IndexMut<SegIdx> for SegVec<T> {
    #[inline]
    fn index_mut(&mut self, idx: SegIdx) -> &mut T {
        &mut self.data[idx.as_usize()]
    }
}

/// A dense map with O(1) bulk reset: each slot carries an epoch stamp,
/// and [`StampedSegVec::clear`] just bumps the epoch, invalidating every
/// slot at once. The map this replaces would be cleared with an O(n)
/// `fill` (or reallocated) before every search / iteration.
#[derive(Debug, Clone)]
pub struct StampedSegVec<T> {
    space: SegSpace,
    epoch: u32,
    stamp: Vec<u32>,
    data: Vec<T>,
}

impl<T: Copy + Default> StampedSegVec<T> {
    /// Empty map over `space` (every slot unset).
    pub fn new(space: SegSpace) -> Self {
        StampedSegVec {
            space,
            epoch: 1,
            stamp: vec![0; space.len()],
            data: vec![T::default(); space.len()],
        }
    }

    /// The space this map covers.
    #[inline]
    pub fn space(&self) -> SegSpace {
        self.space
    }

    /// Unset every slot in O(1) (amortised: a full `stamp` rewrite only
    /// on epoch wrap-around, once per `u32::MAX` clears).
    #[inline]
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Whether `idx` holds a value set since the last [`clear`].
    ///
    /// [`clear`]: StampedSegVec::clear
    #[inline]
    pub fn is_set(&self, idx: SegIdx) -> bool {
        self.stamp[idx.as_usize()] == self.epoch
    }

    /// Value at `idx`, if set this epoch.
    #[inline]
    pub fn get(&self, idx: SegIdx) -> Option<T> {
        if self.is_set(idx) {
            Some(self.data[idx.as_usize()])
        } else {
            None
        }
    }

    /// Set `idx` to `value`.
    #[inline]
    pub fn set(&mut self, idx: SegIdx, value: T) {
        self.stamp[idx.as_usize()] = self.epoch;
        self.data[idx.as_usize()] = value;
    }

    /// Set `idx` only if unset this epoch; returns whether it was newly
    /// set (the building block for dedup-marker use).
    #[inline]
    pub fn set_once(&mut self, idx: SegIdx, value: T) -> bool {
        if self.is_set(idx) {
            false
        } else {
            self.set(idx, value);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Dir, RowCol};
    use crate::segment::canonicalize;
    use crate::wire;

    const DIMS: Dims = Dims::new(16, 24);

    #[test]
    fn segspace_round_trips_canonical_segments() {
        let space = SegSpace::new(DIMS);
        assert_eq!(space.len(), DIMS.tiles() * NUM_LOCAL_WIRES);
        for (rc, w) in [
            (RowCol::new(0, 0), wire::out(0)),
            (RowCol::new(5, 7), wire::S1_YQ),
            (RowCol::new(9, 0), wire::hex(Dir::North, 11)),
            (RowCol::new(15, 23), wire::feedback(7)),
        ] {
            let seg = canonicalize(DIMS, rc, w).unwrap();
            let idx = space.index(seg);
            assert!(idx.as_usize() < space.len());
            assert_eq!(space.segment(idx), seg);
        }
    }

    #[test]
    fn segspace_index_agrees_with_segment_index() {
        let space = SegSpace::new(DIMS);
        let seg = canonicalize(DIMS, RowCol::new(3, 4), wire::single(Dir::East, 2)).unwrap();
        assert_eq!(space.index(seg).as_usize(), seg.index(DIMS));
    }

    #[test]
    fn segvec_indexes_and_iterates() {
        let space = SegSpace::new(Dims::new(2, 2));
        let mut v: SegVec<u32> = SegVec::new(space, 0);
        assert_eq!(v.len(), space.len());
        let idx = SegIdx(7);
        v[idx] = 42;
        assert_eq!(v[idx], 42);
        let nonzero: Vec<(SegIdx, u32)> = v
            .iter()
            .filter(|(_, &x)| x != 0)
            .map(|(i, &x)| (i, x))
            .collect();
        assert_eq!(nonzero, vec![(idx, 42)]);
        v.fill(1);
        assert_eq!(v[idx], 1);
    }

    #[test]
    fn segvec_from_fn_supports_non_clone_cells() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let space = SegSpace::new(Dims::new(1, 2));
        let v: SegVec<AtomicU32> = SegVec::from_fn(space, || AtomicU32::new(u32::MAX));
        assert_eq!(v[SegIdx(3)].load(Ordering::Relaxed), u32::MAX);
        v[SegIdx(3)].store(9, Ordering::Relaxed);
        assert_eq!(v[SegIdx(3)].load(Ordering::Relaxed), 9);
    }

    #[test]
    fn stamped_segvec_clears_in_o1() {
        let space = SegSpace::new(Dims::new(1, 1));
        let mut v: StampedSegVec<u32> = StampedSegVec::new(space);
        let idx = SegIdx(5);
        assert!(!v.is_set(idx));
        assert_eq!(v.get(idx), None);
        v.set(idx, 3);
        assert_eq!(v.get(idx), Some(3));
        v.clear();
        assert!(!v.is_set(idx));
        assert_eq!(v.get(idx), None);
        v.set(idx, 4);
        assert_eq!(v.get(idx), Some(4));
    }

    #[test]
    fn stamped_segvec_set_once_dedups() {
        let space = SegSpace::new(Dims::new(1, 1));
        let mut v: StampedSegVec<()> = StampedSegVec::new(space);
        assert!(v.set_once(SegIdx(2), ()));
        assert!(!v.set_once(SegIdx(2), ()));
        v.clear();
        assert!(v.set_once(SegIdx(2), ()));
    }

    #[test]
    fn stamped_segvec_survives_epoch_wraparound() {
        let space = SegSpace::new(Dims::new(1, 1));
        let mut v: StampedSegVec<u8> = StampedSegVec::new(space);
        v.set(SegIdx(0), 1);
        // Force the wrap path directly rather than clearing 2^32 times.
        v.epoch = u32::MAX;
        v.clear();
        assert_eq!(v.epoch, 1);
        assert!(!v.is_set(SegIdx(0)), "stale stamps must not resurrect");
        v.set(SegIdx(0), 2);
        assert_eq!(v.get(SegIdx(0)), Some(2));
    }
}
