//! The architecture description class: programmable interconnect point
//! (PIP) connectivity.
//!
//! Paper §3: *"Also in this Java class is a description of each wire,
//! including how long it is, its direction, which wires can drive it, and
//! which wires it can drive."* This module is the single source of truth
//! for which `(from, to)` wire pairs can be connected inside a tile's
//! general routing matrix (GRM). Routers must query it rather than assume
//! connectivity, which is what makes them architecture-independent (paper
//! §5).
//!
//! ## Drive rules (paper §2)
//!
//! * *"Logic block outputs drive all length interconnects"* — slice
//!   outputs reach the OMUX (`OUT[j]`), direct connects and feedback; the
//!   OMUX drives singles, hexes and (at access tiles) long lines.
//! * *"longs can drive hexes only"*.
//! * *"hexes drive singles and other hexes"*.
//! * *"singles drive logic block inputs, vertical long lines, and other
//!   singles"*.
//! * *"Some hexes are bi-directional"* — here: even-indexed hexes can also
//!   be driven at their endpoint.
//! * Long lines are *"buffered, bi-directional"* — driveable at every
//!   access tap.
//! * Global clock nets drive only CLK input pins.
//!
//! ## Fan-out patterns
//!
//! Real Virtex GRM fan-out is sparse and irregular (and proprietary at the
//! bit level); we use sparse *deterministic* patterns with the same
//! shape — each driver reaches a small fixed subset of each target class,
//! and the subsets are chosen so the paper's §3.1 worked example
//! (`S1_YQ → Out[1] → SingleEast[5] → SingleNorth[0] → S0F3`) is legal.
//! The formulas are documented inline; the tests verify full coverage
//! (every single/hex/long/input is drivable by *something*).

use crate::geometry::{Dims, Dir, RowCol};
use crate::segment::{self, Segment, Tap};
use crate::wire::{
    self, Wire, WireKind, HEXES_PER_DIR, INPUTS_PER_SLICE, LONG_ACCESS, NUM_LONG, NUM_OUT,
    NUM_SLICE_IN, SINGLES_PER_DIR,
};

/// Whether hex `idx` is one of the bi-directional hexes (driveable at
/// either endpoint). Half of the 12 accessible hexes per direction.
#[inline]
pub const fn hex_is_bidir(idx: u8) -> bool {
    idx.is_multiple_of(2)
}

/// The architecture description for one device geometry.
///
/// Stateless and cheap to copy; all queries are closed-form.
#[derive(Debug, Clone, Copy)]
pub struct Arch {
    dims: Dims,
}

impl Arch {
    /// Architecture description for a device of the given dimensions.
    pub const fn new(dims: Dims) -> Self {
        Arch { dims }
    }

    #[inline]
    /// Device dimensions this description is for.
    pub const fn dims(&self) -> Dims {
        self.dims
    }

    /// Append every wire that `from` can drive through a PIP at tile `rc`.
    ///
    /// `from` is a local name; targets are local names at the same tile.
    /// Results are filtered to wires that exist at `rc`. Workhorse-buffer
    /// style: the caller clears `out`.
    pub fn pips_from(&self, rc: RowCol, from: Wire, out: &mut Vec<Wire>) {
        if !segment::wire_exists(self.dims, rc, from) {
            return;
        }
        let dims = self.dims;
        let push = |w: Wire, out: &mut Vec<Wire>| {
            if segment::wire_exists(dims, rc, w) {
                out.push(w);
            }
        };
        match from.kind() {
            WireKind::SliceOut { slice, pin } => {
                let k = (slice * 4 + pin) as usize;
                // Each output reaches two OMUX lines: OUT[k] and OUT[k+2].
                push(wire::out(k % NUM_OUT), out);
                push(wire::out((k + 2) % NUM_OUT), out);
                push(wire::direct_e(k), out);
                push(wire::feedback(k), out);
            }
            WireKind::Out(j) => {
                let j = j as usize;
                for d in Dir::ALL {
                    let di = d.index();
                    // OUT[j] drives singles {3j+2d, +8, +16} (mod 24) ...
                    for off in [0usize, 8, 16] {
                        push(
                            wire::single(d, (3 * j + 2 * di + off) % SINGLES_PER_DIR),
                            out,
                        );
                    }
                    // ... and hexes {j+d, +4, +8} (mod 12), at their origin.
                    for off in [0usize, 4, 8] {
                        let i = (j + di + off) % HEXES_PER_DIR;
                        push(wire::hex(d, i), out);
                        // Bi-directional hexes can also be driven at their
                        // far endpoint.
                        if hex_is_bidir(i as u8) {
                            push(wire::hex_end(d, i), out);
                        }
                    }
                }
                // Long lines at access tiles ("outputs drive all length
                // interconnects").
                push(wire::long_h(j % NUM_LONG), out);
                push(wire::long_h((j + 6) % NUM_LONG), out);
                push(wire::long_v((j + 3) % NUM_LONG), out);
                push(wire::long_v((j + 9) % NUM_LONG), out);
            }
            WireKind::SingleEnd { dir, idx } => {
                let (i, di) = (idx as usize, dir.index());
                // Singles drive logic-block inputs ...
                for k in 0..4usize {
                    let p = (7 * i + 3 * di + k) % NUM_SLICE_IN;
                    push(
                        wire::slice_in(p / INPUTS_PER_SLICE, (p % INPUTS_PER_SLICE) as u8),
                        out,
                    );
                }
                // ... other singles ...
                for d2 in Dir::ALL {
                    let d2i = d2.index();
                    push(wire::single(d2, (i + 19 + d2i) % SINGLES_PER_DIR), out);
                    push(wire::single(d2, (i + 7 + d2i) % SINGLES_PER_DIR), out);
                }
                // ... and vertical long lines.
                push(wire::long_v((i + di) % NUM_LONG), out);
            }
            WireKind::HexMid { dir, idx } | WireKind::HexEnd { dir, idx } => {
                self.hex_tap_fanout(rc, dir, idx, out);
            }
            WireKind::Hex { dir, idx } => {
                // The origin tap fans out only on bi-directional hexes
                // (signal may have been driven at the far endpoint).
                if hex_is_bidir(idx) {
                    self.hex_tap_fanout(rc, dir, idx, out);
                }
            }
            WireKind::LongH(i) | WireKind::LongV(i) => {
                let i = i as usize;
                // Longs can drive hexes only.
                for d in Dir::ALL {
                    let di = d.index();
                    let t = (i + di) % HEXES_PER_DIR;
                    push(wire::hex(d, t), out);
                    if hex_is_bidir(t as u8) {
                        push(wire::hex_end(d, t), out);
                    }
                }
            }
            WireKind::DirectWEnd(i) => {
                for k in 0..3usize {
                    let p = (3 * i as usize + k) % NUM_SLICE_IN;
                    push(
                        wire::slice_in(p / INPUTS_PER_SLICE, (p % INPUTS_PER_SLICE) as u8),
                        out,
                    );
                }
            }
            WireKind::Feedback(i) => {
                for k in 0..3usize {
                    let p = (3 * i as usize + 13 + k) % NUM_SLICE_IN;
                    push(
                        wire::slice_in(p / INPUTS_PER_SLICE, (p % INPUTS_PER_SLICE) as u8),
                        out,
                    );
                }
            }
            WireKind::Gclk(_) => {
                // Dedicated global nets drive only clock pins.
                push(wire::slice_in(0, wire::slice_in_pin::CLK), out);
                push(wire::slice_in(1, wire::slice_in_pin::CLK), out);
            }
            // Signals leave these names at other taps; no local fan-out.
            WireKind::SliceIn { .. } | WireKind::Single { .. } | WireKind::DirectE(_) => {}
        }
    }

    /// Fan-out shared by hex mid/end taps (and origin taps of
    /// bi-directional hexes): singles and other hexes (paper §2).
    fn hex_tap_fanout(&self, rc: RowCol, _dir: Dir, idx: u8, out: &mut Vec<Wire>) {
        let dims = self.dims;
        let i = idx as usize;
        let push = |w: Wire, out: &mut Vec<Wire>| {
            if segment::wire_exists(dims, rc, w) {
                out.push(w);
            }
        };
        for d2 in Dir::ALL {
            let d2i = d2.index();
            push(wire::single(d2, (2 * i + d2i) % SINGLES_PER_DIR), out);
            push(wire::single(d2, (2 * i + d2i + 12) % SINGLES_PER_DIR), out);
            let h1 = (i + 3 + d2i) % HEXES_PER_DIR;
            let h2 = (i + 9 + d2i) % HEXES_PER_DIR;
            push(wire::hex(d2, h1), out);
            push(wire::hex(d2, h2), out);
            if hex_is_bidir(h1 as u8) {
                push(wire::hex_end(d2, h1), out);
            }
            if hex_is_bidir(h2 as u8) {
                push(wire::hex_end(d2, h2), out);
            }
        }
    }

    /// Whether the GRM at `rc` contains a PIP connecting `from` to `to`.
    pub fn pip_exists(&self, rc: RowCol, from: Wire, to: Wire) -> bool {
        let mut buf = Vec::with_capacity(32);
        self.pips_from(rc, from, &mut buf);
        buf.contains(&to)
    }

    /// Append every local wire that can drive `to` through a PIP at `rc`.
    ///
    /// Computed by scanning the (small, fixed) candidate driver classes and
    /// testing `pips_from`; intended for trace/debug paths, not for router
    /// inner loops.
    pub fn pips_into(&self, rc: RowCol, to: Wire, out: &mut Vec<Wire>) {
        if !segment::wire_exists(self.dims, rc, to) {
            return;
        }
        let mut buf = Vec::with_capacity(64);
        for from in Wire::all() {
            if from == to || !segment::wire_exists(self.dims, rc, from) {
                continue;
            }
            buf.clear();
            self.pips_from(rc, from, &mut buf);
            if buf.contains(&to) {
                out.push(from);
            }
        }
    }

    /// Append the taps of `seg` at which it can drive other wires
    /// (out-taps). For most wires this is the far end / mid taps; for
    /// bi-directional resources it includes the origin.
    pub fn source_taps(&self, seg: Segment, out: &mut Vec<Tap>) {
        let mut all = Vec::with_capacity(4);
        segment::taps(self.dims, seg, &mut all);
        let mut probe = Vec::with_capacity(8);
        for tap in all {
            probe.clear();
            self.pips_from(tap.rc, tap.wire, &mut probe);
            if !probe.is_empty() {
                out.push(tap);
            }
        }
    }

    /// Append the taps of `seg` at which it can *be driven* (drive-in
    /// taps): the origin for ordinary wires, both endpoints for
    /// bi-directional hexes, every access tap for long lines.
    pub fn drive_taps(&self, seg: Segment, out: &mut Vec<Tap>) {
        match seg.wire.kind() {
            WireKind::Hex { dir, idx } => {
                out.push(Tap {
                    rc: seg.rc,
                    wire: seg.wire,
                });
                if hex_is_bidir(idx) {
                    out.push(Tap {
                        rc: seg.rc.step_unchecked(dir, wire::HEX_SPAN),
                        wire: wire::hex_end(dir, idx as usize),
                    });
                }
            }
            WireKind::LongH(_) | WireKind::LongV(_) => {
                segment::taps(self.dims, seg, out);
            }
            _ => out.push(Tap {
                rc: seg.rc,
                wire: seg.wire,
            }),
        }
    }

    /// Length, in CLBs, of the wire (0 for tile-local resources; longs
    /// report the full row/column span).
    pub fn wire_length(&self, wire: Wire) -> u16 {
        match wire.kind() {
            WireKind::Single { .. }
            | WireKind::SingleEnd { .. }
            | WireKind::DirectE(_)
            | WireKind::DirectWEnd(_) => 1,
            WireKind::Hex { .. } | WireKind::HexMid { .. } | WireKind::HexEnd { .. } => {
                wire::HEX_SPAN
            }
            WireKind::LongH(_) => self.dims.cols,
            WireKind::LongV(_) => self.dims.rows,
            _ => 0,
        }
    }

    /// Direction of travel of the wire, if it has one.
    pub fn wire_dir(&self, wire: Wire) -> Option<Dir> {
        match wire.kind() {
            WireKind::Single { dir, .. }
            | WireKind::SingleEnd { dir, .. }
            | WireKind::Hex { dir, .. }
            | WireKind::HexMid { dir, .. }
            | WireKind::HexEnd { dir, .. } => Some(dir),
            WireKind::DirectE(_) | WireKind::DirectWEnd(_) => Some(Dir::East),
            _ => None,
        }
    }

    /// Whether long-line PIPs surface at this tile (column access for
    /// horizontal longs, row access for vertical).
    #[inline]
    pub fn is_long_h_access(&self, rc: RowCol) -> bool {
        rc.col.is_multiple_of(LONG_ACCESS)
    }

    /// See [`Arch::is_long_h_access`].
    #[inline]
    pub fn is_long_v_access(&self, rc: RowCol) -> bool {
        rc.row.is_multiple_of(LONG_ACCESS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::slice_in_pin;

    const DIMS: Dims = Dims::new(16, 24);

    fn arch() -> Arch {
        Arch::new(DIMS)
    }

    fn pips(rc: RowCol, from: Wire) -> Vec<Wire> {
        let mut v = Vec::new();
        arch().pips_from(rc, from, &mut v);
        v
    }

    #[test]
    fn paper_worked_example_pips_exist() {
        // §3.1: route(5,7,S1_YQ,Out[1]); route(5,7,Out[1],SingleEast[5]);
        //       route(5,8,SingleWest[5],SingleNorth[0]);
        //       route(6,8,SingleSouth[0],S0F3);
        let a = arch();
        assert!(a.pip_exists(RowCol::new(5, 7), wire::S1_YQ, wire::out(1)));
        assert!(a.pip_exists(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5)));
        // "SingleWest[5]" at (5,8) is our SINGLE_E_END[5].
        assert!(a.pip_exists(
            RowCol::new(5, 8),
            wire::single_end(Dir::East, 5),
            wire::single(Dir::North, 0)
        ));
        // "SingleSouth[0]" at (6,8) is our SINGLE_N_END[0].
        assert!(a.pip_exists(
            RowCol::new(6, 8),
            wire::single_end(Dir::North, 0),
            wire::S0_F3
        ));
    }

    #[test]
    fn drive_rules_outputs() {
        // Slice outputs reach only OMUX, direct and feedback.
        for w in pips(RowCol::new(4, 4), wire::S1_YQ) {
            assert!(
                matches!(
                    w.kind(),
                    WireKind::Out(_) | WireKind::DirectE(_) | WireKind::Feedback(_)
                ),
                "unexpected slice-out target {w}"
            );
        }
        // OMUX drives singles, hexes and longs only.
        for w in pips(RowCol::new(6, 6), wire::out(3)) {
            assert!(
                matches!(
                    w.kind(),
                    WireKind::Single { .. }
                        | WireKind::Hex { .. }
                        | WireKind::HexEnd { .. }
                        | WireKind::LongH(_)
                        | WireKind::LongV(_)
                ),
                "unexpected OMUX target {w}"
            );
        }
    }

    #[test]
    fn drive_rules_longs_drive_hexes_only() {
        for rc in [RowCol::new(0, 0), RowCol::new(6, 12)] {
            for i in 0..NUM_LONG {
                for w in pips(rc, wire::long_h(i)) {
                    assert!(
                        matches!(w.kind(), WireKind::Hex { .. } | WireKind::HexEnd { .. }),
                        "long drove {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn drive_rules_hexes_drive_singles_and_hexes() {
        for w in pips(RowCol::new(8, 9), wire::hex_mid(Dir::North, 5)) {
            assert!(
                matches!(
                    w.kind(),
                    WireKind::Single { .. } | WireKind::Hex { .. } | WireKind::HexEnd { .. }
                ),
                "hex tap drove {w}"
            );
        }
    }

    #[test]
    fn drive_rules_singles() {
        // Singles drive inputs, singles and vertical longs — and vertical
        // longs only at access rows.
        for rc in [RowCol::new(6, 3), RowCol::new(7, 3)] {
            for w in pips(rc, wire::single_end(Dir::East, 11)) {
                match w.kind() {
                    WireKind::SliceIn { .. } | WireKind::Single { .. } => {}
                    WireKind::LongV(_) => {
                        assert!(arch().is_long_v_access(rc), "LONG_V pip off access row")
                    }
                    other => panic!("single drove {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unidirectional_hexes_have_no_endpoint_drive() {
        let a = arch();
        let rc = RowCol::new(2, 2);
        // idx 1 is unidirectional, idx 0/2... bidirectional.
        for j in 0..NUM_OUT {
            for w in pips(rc, wire::out(j)) {
                if let WireKind::HexEnd { idx, .. } = w.kind() {
                    assert!(
                        hex_is_bidir(idx),
                        "OUT drove endpoint of unidirectional hex"
                    );
                }
            }
        }
        // drive_taps reports both ends for bidir, one for unidir.
        let bidir = Segment {
            rc,
            wire: wire::hex(Dir::East, 4),
        };
        let unidir = Segment {
            rc,
            wire: wire::hex(Dir::East, 5),
        };
        let mut t = Vec::new();
        a.drive_taps(bidir, &mut t);
        assert_eq!(t.len(), 2);
        t.clear();
        a.drive_taps(unidir, &mut t);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn every_single_is_drivable_from_omux_at_interior_tile() {
        let rc = RowCol::new(8, 8);
        for d in Dir::ALL {
            for i in 0..SINGLES_PER_DIR {
                let target = wire::single(d, i);
                let drivable = (0..NUM_OUT).any(|j| pips(rc, wire::out(j)).contains(&target));
                assert!(drivable, "no OMUX drives {}", target.name());
            }
        }
    }

    #[test]
    fn every_hex_is_drivable_from_omux_at_interior_tile() {
        let rc = RowCol::new(8, 8);
        for d in Dir::ALL {
            for i in 0..HEXES_PER_DIR {
                let target = wire::hex(d, i);
                let drivable = (0..NUM_OUT).any(|j| pips(rc, wire::out(j)).contains(&target));
                assert!(drivable, "no OMUX drives {}", target.name());
            }
        }
    }

    #[test]
    fn every_long_is_drivable_from_omux_at_access_tile() {
        let rc = RowCol::new(6, 6);
        for i in 0..NUM_LONG {
            for target in [wire::long_h(i), wire::long_v(i)] {
                let drivable = (0..NUM_OUT).any(|j| pips(rc, wire::out(j)).contains(&target));
                assert!(drivable, "no OMUX drives {}", target.name());
            }
        }
    }

    #[test]
    fn every_input_pin_is_reachable_from_arriving_singles() {
        let rc = RowCol::new(8, 8);
        for slice in 0..2usize {
            for pin in 0..INPUTS_PER_SLICE as u8 {
                let target = wire::slice_in(slice, pin);
                let reachable = Dir::ALL.iter().any(|&d| {
                    (0..SINGLES_PER_DIR).any(|i| pips(rc, wire::single_end(d, i)).contains(&target))
                });
                assert!(reachable, "no arriving single drives {}", target.name());
            }
        }
    }

    #[test]
    fn gclk_drives_only_clock_pins() {
        let p = pips(RowCol::new(3, 3), wire::gclk(2));
        assert_eq!(
            p,
            vec![
                wire::slice_in(0, slice_in_pin::CLK),
                wire::slice_in(1, slice_in_pin::CLK)
            ]
        );
    }

    #[test]
    fn pips_into_inverts_pips_from() {
        let a = arch();
        let rc = RowCol::new(5, 8);
        let mut into = Vec::new();
        a.pips_into(rc, wire::single(Dir::North, 0), &mut into);
        assert!(into.contains(&wire::single_end(Dir::East, 5)));
        for from in &into {
            assert!(a.pip_exists(rc, *from, wire::single(Dir::North, 0)));
        }
    }

    #[test]
    fn no_pips_at_nonexistent_wires() {
        // Top-row north single doesn't exist; nothing may drive into or
        // out of it.
        let rc = RowCol::new(15, 4);
        assert!(pips(rc, wire::single(Dir::North, 0)).is_empty());
        for j in 0..NUM_OUT {
            for w in pips(rc, wire::out(j)) {
                assert!(
                    segment::wire_exists(DIMS, rc, w),
                    "pip to nonexistent wire {w}"
                );
            }
        }
    }

    #[test]
    fn source_taps_of_a_single_is_its_far_end() {
        let a = arch();
        let seg = Segment {
            rc: RowCol::new(5, 7),
            wire: wire::single(Dir::East, 5),
        };
        let mut t = Vec::new();
        a.source_taps(seg, &mut t);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].rc, RowCol::new(5, 8));
        assert_eq!(t[0].wire, wire::single_end(Dir::East, 5));
    }

    #[test]
    fn wire_metadata() {
        let a = arch();
        assert_eq!(a.wire_length(wire::single(Dir::North, 0)), 1);
        assert_eq!(a.wire_length(wire::hex(Dir::South, 3)), 6);
        assert_eq!(a.wire_length(wire::long_h(0)), DIMS.cols);
        assert_eq!(a.wire_length(wire::out(0)), 0);
        assert_eq!(a.wire_dir(wire::hex_end(Dir::West, 1)), Some(Dir::West));
        assert_eq!(a.wire_dir(wire::out(0)), None);
    }
}
