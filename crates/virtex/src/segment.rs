//! Canonical wire segments.
//!
//! A physical wire *segment* (one piece of metal) is visible at several
//! tiles under several local names: an east single is `SINGLE_E[i]` at its
//! origin and `SINGLE_E_END[i]` one tile east; a hex is visible at its
//! origin, midpoint and endpoint; a long line at every sixth tile of its
//! row/column; a global clock everywhere. Occupancy, contention and net
//! identity are properties of the *segment*, so every router data
//! structure keys on the canonical `(tile, wire)` pair defined here.
//!
//! Canonical form: the origin-form local name at the tile that owns the
//! resource —
//! * singles/hexes/directs: the `Single`/`Hex`/`DirectE` name at the
//!   origin tile;
//! * horizontal longs: `LONG_H[i]` at column 0 of their row;
//! * vertical longs: `LONG_V[i]` at row 0 of their column;
//! * global clocks: `GCLK[i]` at tile (0,0);
//! * everything else (pins, OMUX, feedback) is tile-local already.

use crate::geometry::{Dims, Dir, RowCol};
use crate::wire::{self, Wire, WireKind, HEX_SPAN, LONG_ACCESS, NUM_LOCAL_WIRES};

/// A canonical wire segment: the globally unique identity of one routing
/// resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Segment {
    /// Tile owning the resource (origin tile of travelling wires).
    pub rc: RowCol,
    /// Origin-form local wire name.
    pub wire: Wire,
}

impl Segment {
    /// Dense index in `0 .. dims.tiles() * NUM_LOCAL_WIRES`, usable for
    /// flat visited/occupancy arrays.
    #[inline]
    pub fn index(self, dims: Dims) -> usize {
        dims.tile_index(self.rc) * NUM_LOCAL_WIRES + self.wire.0 as usize
    }

    /// Inverse of [`Segment::index`]. The result is only meaningful for
    /// indices produced from canonical segments.
    #[inline]
    pub fn from_index(index: usize, dims: Dims) -> Segment {
        Segment {
            rc: dims.tile_at(index / NUM_LOCAL_WIRES),
            wire: Wire((index % NUM_LOCAL_WIRES) as u16),
        }
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.wire.name(), self.rc)
    }
}

/// Whether local name `wire` denotes an existing resource at tile `rc` on a
/// `dims`-sized device. Travelling wires only exist where their full span
/// lies on-chip; long lines are only visible at access tiles (every
/// [`LONG_ACCESS`] CLBs, per paper §2 "Long lines can be accessed every 6
/// blocks").
pub fn wire_exists(dims: Dims, rc: RowCol, wire: Wire) -> bool {
    if !dims.contains(rc) {
        return false;
    }
    match wire.kind() {
        WireKind::Out(_)
        | WireKind::SliceOut { .. }
        | WireKind::SliceIn { .. }
        | WireKind::Feedback(_)
        | WireKind::Gclk(_) => true,
        WireKind::Single { dir, .. } => rc.step(dir, 1, dims).is_some(),
        WireKind::SingleEnd { dir, .. } => rc.step(dir.opposite(), 1, dims).is_some(),
        WireKind::Hex { dir, .. } => rc.step(dir, HEX_SPAN, dims).is_some(),
        WireKind::HexMid { dir, .. } => {
            rc.step(dir, HEX_SPAN / 2, dims).is_some()
                && rc.step(dir.opposite(), HEX_SPAN / 2, dims).is_some()
        }
        WireKind::HexEnd { dir, .. } => rc.step(dir.opposite(), HEX_SPAN, dims).is_some(),
        WireKind::LongH(_) => rc.col.is_multiple_of(LONG_ACCESS),
        WireKind::LongV(_) => rc.row.is_multiple_of(LONG_ACCESS),
        WireKind::DirectE(_) => rc.step(Dir::East, 1, dims).is_some(),
        WireKind::DirectWEnd(_) => rc.step(Dir::West, 1, dims).is_some(),
    }
}

/// Resolve a local `(tile, wire)` name to its canonical segment.
///
/// Returns `None` when the name does not denote an existing resource at
/// `rc` (off-chip span, non-access tile for a long line, …).
pub fn canonicalize(dims: Dims, rc: RowCol, wire: Wire) -> Option<Segment> {
    if !wire_exists(dims, rc, wire) {
        return None;
    }
    let seg = match wire.kind() {
        WireKind::SingleEnd { dir, idx } => Segment {
            rc: rc.step_unchecked(dir.opposite(), 1),
            wire: wire::single(dir, idx as usize),
        },
        WireKind::HexMid { dir, idx } => Segment {
            rc: rc.step_unchecked(dir.opposite(), HEX_SPAN / 2),
            wire: wire::hex(dir, idx as usize),
        },
        WireKind::HexEnd { dir, idx } => Segment {
            rc: rc.step_unchecked(dir.opposite(), HEX_SPAN),
            wire: wire::hex(dir, idx as usize),
        },
        WireKind::LongH(_) => Segment {
            rc: RowCol::new(rc.row, 0),
            wire,
        },
        WireKind::LongV(_) => Segment {
            rc: RowCol::new(0, rc.col),
            wire,
        },
        WireKind::DirectWEnd(idx) => Segment {
            rc: rc.step_unchecked(Dir::West, 1),
            wire: wire::direct_e(idx as usize),
        },
        WireKind::Gclk(_) => Segment {
            rc: RowCol::new(0, 0),
            wire,
        },
        _ => Segment { rc, wire },
    };
    debug_assert!(is_canonical(dims, seg), "non-canonical result {seg}");
    Some(seg)
}

/// Whether `seg` is already in canonical form on a `dims` device.
pub fn is_canonical(dims: Dims, seg: Segment) -> bool {
    if !wire_exists(dims, seg.rc, seg.wire) {
        return false;
    }
    match seg.wire.kind() {
        WireKind::SingleEnd { .. }
        | WireKind::HexMid { .. }
        | WireKind::HexEnd { .. }
        | WireKind::DirectWEnd(_) => false,
        WireKind::LongH(_) => seg.rc.col == 0,
        WireKind::LongV(_) => seg.rc.row == 0,
        WireKind::Gclk(_) => seg.rc == RowCol::new(0, 0),
        _ => true,
    }
}

/// A place where a segment surfaces: the tile and the local name it bears
/// there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tap {
    /// Tile at which the segment surfaces.
    pub rc: RowCol,
    /// Local name the segment bears there.
    pub wire: Wire,
}

/// Enumerate every tap of a canonical segment: each `(tile, local name)`
/// pair at which the segment is visible, origin first.
///
/// Taps are appended to `out` (workhorse-buffer style; the caller clears).
pub fn taps(dims: Dims, seg: Segment, out: &mut Vec<Tap>) {
    debug_assert!(
        is_canonical(dims, seg),
        "taps() wants canonical input, got {seg}"
    );
    let rc = seg.rc;
    match seg.wire.kind() {
        WireKind::Single { dir, idx } => {
            out.push(Tap { rc, wire: seg.wire });
            out.push(Tap {
                rc: rc.step_unchecked(dir, 1),
                wire: wire::single_end(dir, idx as usize),
            });
        }
        WireKind::Hex { dir, idx } => {
            out.push(Tap { rc, wire: seg.wire });
            out.push(Tap {
                rc: rc.step_unchecked(dir, HEX_SPAN / 2),
                wire: wire::hex_mid(dir, idx as usize),
            });
            out.push(Tap {
                rc: rc.step_unchecked(dir, HEX_SPAN),
                wire: wire::hex_end(dir, idx as usize),
            });
        }
        WireKind::LongH(_) => {
            let mut c = 0;
            while c < dims.cols {
                out.push(Tap {
                    rc: RowCol::new(rc.row, c),
                    wire: seg.wire,
                });
                c += LONG_ACCESS;
            }
        }
        WireKind::LongV(_) => {
            let mut r = 0;
            while r < dims.rows {
                out.push(Tap {
                    rc: RowCol::new(r, rc.col),
                    wire: seg.wire,
                });
                r += LONG_ACCESS;
            }
        }
        WireKind::DirectE(idx) => {
            out.push(Tap { rc, wire: seg.wire });
            out.push(Tap {
                rc: rc.step_unchecked(Dir::East, 1),
                wire: wire::direct_w_end(idx as usize),
            });
        }
        WireKind::Gclk(_) => {
            // Global clocks surface at every tile; callers that only need
            // a specific tile should not enumerate this.
            for t in dims.iter_tiles() {
                out.push(Tap {
                    rc: t,
                    wire: seg.wire,
                });
            }
        }
        _ => out.push(Tap { rc, wire: seg.wire }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{HEXES_PER_DIR, SINGLES_PER_DIR};

    const DIMS: Dims = Dims::new(16, 24);

    #[test]
    fn paper_example_alias_single_east() {
        // Paper §3.1: SingleEast[5] driven at (5,7) is SingleWest[5] at
        // (5,8) — in our naming, SINGLE_E_END[5] at (5,8).
        let origin = canonicalize(DIMS, RowCol::new(5, 7), wire::single(Dir::East, 5)).unwrap();
        let arriving =
            canonicalize(DIMS, RowCol::new(5, 8), wire::single_end(Dir::East, 5)).unwrap();
        assert_eq!(origin, arriving);
    }

    #[test]
    fn hex_taps_are_origin_mid_end() {
        let seg = canonicalize(DIMS, RowCol::new(2, 3), wire::hex(Dir::North, 7)).unwrap();
        let mut t = Vec::new();
        taps(DIMS, seg, &mut t);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].rc, RowCol::new(2, 3));
        assert_eq!(t[1].rc, RowCol::new(5, 3));
        assert_eq!(t[2].rc, RowCol::new(8, 3));
        // And every tap canonicalizes back to the same segment.
        for tap in &t {
            assert_eq!(canonicalize(DIMS, tap.rc, tap.wire), Some(seg));
        }
    }

    #[test]
    fn edge_wires_do_not_exist() {
        // A north single at the top row has no far end.
        assert!(!wire_exists(
            DIMS,
            RowCol::new(15, 0),
            wire::single(Dir::North, 0)
        ));
        // A hex needs its whole 6-CLB span on chip.
        assert!(!wire_exists(
            DIMS,
            RowCol::new(11, 0),
            wire::hex(Dir::North, 0)
        ));
        assert!(wire_exists(
            DIMS,
            RowCol::new(9, 0),
            wire::hex(Dir::North, 0)
        ));
        // Long lines only at access tiles.
        assert!(wire_exists(DIMS, RowCol::new(3, 6), wire::long_h(0)));
        assert!(!wire_exists(DIMS, RowCol::new(3, 7), wire::long_h(0)));
    }

    #[test]
    fn long_lines_access_every_six_blocks() {
        // Paper §2: "Long lines can be accessed every 6 blocks."
        let seg = canonicalize(DIMS, RowCol::new(3, 12), wire::long_h(4)).unwrap();
        assert_eq!(seg.rc, RowCol::new(3, 0));
        let mut t = Vec::new();
        taps(DIMS, seg, &mut t);
        let cols: Vec<u16> = t.iter().map(|tap| tap.rc.col).collect();
        assert_eq!(cols, vec![0, 6, 12, 18]);
        assert!(t.iter().all(|tap| tap.rc.row == 3));
    }

    #[test]
    fn every_existing_local_name_canonicalizes_and_is_a_tap() {
        // Structural soundness over a whole small device: canonicalize is
        // idempotent and consistent with taps().
        let mut buf = Vec::new();
        for rc in DIMS.iter_tiles() {
            for w in Wire::all() {
                let Some(seg) = canonicalize(DIMS, rc, w) else {
                    assert!(!wire_exists(DIMS, rc, w));
                    continue;
                };
                assert!(is_canonical(DIMS, seg));
                // The (rc, w) pair must appear among the segment's taps.
                buf.clear();
                taps(DIMS, seg, &mut buf);
                assert!(
                    buf.iter().any(|t| t.rc == rc && t.wire == w),
                    "{} not a tap of {}",
                    w.name(),
                    seg
                );
            }
        }
    }

    #[test]
    fn segment_index_round_trips() {
        for (rc, w) in [
            (RowCol::new(0, 0), wire::out(0)),
            (RowCol::new(5, 7), wire::S1_YQ),
            (RowCol::new(9, 0), wire::hex(Dir::North, 11)),
            (RowCol::new(15, 23), wire::feedback(7)),
        ] {
            let seg = canonicalize(DIMS, rc, w).unwrap();
            assert_eq!(Segment::from_index(seg.index(DIMS), DIMS), seg);
        }
    }

    #[test]
    fn distinct_segments_have_distinct_indices() {
        let a = canonicalize(DIMS, RowCol::new(1, 1), wire::single(Dir::North, 3)).unwrap();
        let b = canonicalize(DIMS, RowCol::new(1, 2), wire::single(Dir::North, 3)).unwrap();
        let c = canonicalize(DIMS, RowCol::new(1, 1), wire::single(Dir::North, 4)).unwrap();
        assert_ne!(a.index(DIMS), b.index(DIMS));
        assert_ne!(a.index(DIMS), c.index(DIMS));
    }

    #[test]
    fn singles_per_dir_and_hexes_per_dir_census() {
        // At an interior tile all 24 singles and 12 hexes per direction
        // exist (paper §2 counts).
        let rc = RowCol::new(8, 12);
        for dir in Dir::ALL {
            let singles = (0..SINGLES_PER_DIR)
                .filter(|&i| wire_exists(DIMS, rc, wire::single(dir, i)))
                .count();
            assert_eq!(singles, 24);
            let hexes = (0..HEXES_PER_DIR)
                .filter(|&i| wire_exists(DIMS, rc, wire::hex(dir, i)))
                .count();
            assert_eq!(hexes, 12);
        }
    }
}
