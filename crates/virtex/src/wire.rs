//! The per-tile wire namespace.
//!
//! Every routing resource visible at a CLB tile has a *local wire name*,
//! a small integer (`Wire`). This mirrors the JRoute paper's
//! "architecture description class" in which *"each wire is defined by a
//! unique integer"*. A physical wire segment that spans several tiles has
//! one local name per tile at which it can be accessed; the *canonical*
//! name (and with it a globally unique segment identity) is derived in
//! [`crate::segment`].
//!
//! Layout of the local id space (dense, so per-tile tables can be flat
//! arrays):
//!
//! | range       | resource                                          |
//! |-------------|---------------------------------------------------|
//! | 0..8        | `OUT[j]` — OMUX outputs of the logic block        |
//! | 8..16       | slice outputs `S0_X,S0_XQ,S0_Y,S0_YQ,S1_…`        |
//! | 16..42      | slice inputs, 13 per slice (`F1..F4,G1..G4,BX,BY,CLK,CE,SR`) |
//! | 42..138     | `SINGLE[dir][0..24]` — singles *originating here*  |
//! | 138..234    | `SINGLE_END[dir][0..24]` — singles arriving here   |
//! | 234..282    | `HEX[dir][0..12]` — hexes originating here         |
//! | 282..330    | `HEX_MID[dir][0..12]` — hex midpoint taps          |
//! | 330..378    | `HEX_END[dir][0..12]` — hex endpoint taps          |
//! | 378..390    | `LONG_H[0..12]` — horizontal long lines            |
//! | 390..402    | `LONG_V[0..12]` — vertical long lines              |
//! | 402..410    | `DIRECT_E[0..8]` — direct connect to east neighbour|
//! | 410..418    | `DIRECT_W_END[0..8]` — direct arriving from west   |
//! | 418..426    | `FEEDBACK[0..8]` — logic-block feedback            |
//! | 426..430    | `GCLK[0..4]` — dedicated global clock nets         |
//!
//! Naming note vs. the paper: JBits names a single by the direction it
//! travels *as seen from each tile* — the paper's example drives
//! `SingleEast[5]` at `(5,7)` and consumes the same metal as
//! `SingleWest[5]` at `(5,8)`. We name the consuming end
//! `SINGLE_END[East][5]` ("the east-going single ending here") to keep the
//! id space collision-free; the alias relationship is identical.

use crate::geometry::Dir;

/// Number of OMUX outputs per CLB.
pub const NUM_OUT: usize = 8;
/// Number of slice outputs per CLB (2 slices x {X, XQ, Y, YQ}).
pub const NUM_SLICE_OUT: usize = 8;
/// Number of input pins per slice.
pub const INPUTS_PER_SLICE: usize = 13;
/// Number of slice input pins per CLB (2 slices).
pub const NUM_SLICE_IN: usize = 2 * INPUTS_PER_SLICE;
/// Singles per direction per tile (Virtex: 24).
pub const SINGLES_PER_DIR: usize = 24;
/// Hexes *accessible* (driveable) per direction per tile (Virtex: 12 of 96).
pub const HEXES_PER_DIR: usize = 12;
/// Long lines per orientation (Virtex: 12 horizontal, 12 vertical).
pub const NUM_LONG: usize = 12;
/// Direct connects to the east neighbour.
pub const NUM_DIRECT: usize = 8;
/// Feedback paths from outputs to same-CLB inputs.
pub const NUM_FEEDBACK: usize = 8;
/// Dedicated global clock nets (Virtex: 4).
pub const NUM_GCLK: usize = 4;
/// Span, in CLBs, of a hex line.
pub const HEX_SPAN: u16 = 6;
/// Long lines are accessible every `LONG_ACCESS` CLBs.
pub const LONG_ACCESS: u16 = 6;

pub(crate) const BASE_OUT: u16 = 0;
pub(crate) const BASE_SLICE_OUT: u16 = 8;
pub(crate) const BASE_SLICE_IN: u16 = 16;
pub(crate) const BASE_SINGLE: u16 = 42;
pub(crate) const BASE_SINGLE_END: u16 = 138;
pub(crate) const BASE_HEX: u16 = 234;
pub(crate) const BASE_HEX_MID: u16 = 282;
pub(crate) const BASE_HEX_END: u16 = 330;
pub(crate) const BASE_LONG_H: u16 = 378;
pub(crate) const BASE_LONG_V: u16 = 390;
pub(crate) const BASE_DIRECT_E: u16 = 402;
pub(crate) const BASE_DIRECT_W_END: u16 = 410;
pub(crate) const BASE_FEEDBACK: u16 = 418;
pub(crate) const BASE_GCLK: u16 = 426;

/// Total size of the per-tile local wire id space.
pub const NUM_LOCAL_WIRES: usize = 430;

/// A local wire name at some tile: a dense small integer.
///
/// Construct via the `out`, `single`, `hex`, … helpers or the named
/// constants (`S1_YQ`, …); decode via [`Wire::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wire(pub u16);

/// Decoded form of a [`Wire`].
///
/// For the travelling resources (singles, hexes, directs) the `Dir` is the
/// direction of travel of the physical wire, regardless of whether the
/// local name refers to its origin (`Single`, `Hex`, `DirectE`), its
/// midpoint (`HexMid`) or its destination (`SingleEnd`, `HexEnd`,
/// `DirectWEnd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields (dir, idx, slice, pin) are self-describing
pub enum WireKind {
    /// OMUX output `OUT[j]`.
    Out(u8),
    /// Slice output; `slice` in 0..2, `pin` in 0..4 (X, XQ, Y, YQ).
    SliceOut { slice: u8, pin: u8 },
    /// Slice input; `slice` in 0..2, `pin` in 0..13.
    SliceIn { slice: u8, pin: u8 },
    /// Single originating at this tile, travelling `dir`.
    Single { dir: Dir, idx: u8 },
    /// Single arriving at this tile (it originated one tile behind `dir`).
    SingleEnd { dir: Dir, idx: u8 },
    /// Hex originating at this tile, travelling `dir`.
    Hex { dir: Dir, idx: u8 },
    /// Hex midpoint tap (origin three tiles behind `dir`).
    HexMid { dir: Dir, idx: u8 },
    /// Hex endpoint tap (origin six tiles behind `dir`).
    HexEnd { dir: Dir, idx: u8 },
    /// Horizontal long line.
    LongH(u8),
    /// Vertical long line.
    LongV(u8),
    /// Direct connect originating here toward the east neighbour.
    DirectE(u8),
    /// Direct connect arriving from the west neighbour.
    DirectWEnd(u8),
    /// Feedback from this CLB's outputs to its own inputs.
    Feedback(u8),
    /// Dedicated global clock net (chip-wide).
    Gclk(u8),
}

/// Slice-output pin codes for [`WireKind::SliceOut`].
pub mod slice_out_pin {
    #![allow(missing_docs)] // the pin codes are self-describing
    pub const X: u8 = 0;
    pub const XQ: u8 = 1;
    pub const Y: u8 = 2;
    pub const YQ: u8 = 3;
}

/// Slice-input pin codes for [`WireKind::SliceIn`].
pub mod slice_in_pin {
    #![allow(missing_docs)] // the pin codes are self-describing
    pub const F1: u8 = 0;
    pub const F2: u8 = 1;
    pub const F3: u8 = 2;
    pub const F4: u8 = 3;
    pub const G1: u8 = 4;
    pub const G2: u8 = 5;
    pub const G3: u8 = 6;
    pub const G4: u8 = 7;
    pub const BX: u8 = 8;
    pub const BY: u8 = 9;
    pub const CLK: u8 = 10;
    pub const CE: u8 = 11;
    pub const SR: u8 = 12;
}

/// `OUT[j]` — OMUX output `j` (0..8).
#[inline]
pub const fn out(j: usize) -> Wire {
    assert!(j < NUM_OUT);
    Wire(BASE_OUT + j as u16)
}

/// Slice output; `slice` 0..2, `pin` one of [`slice_out_pin`].
#[inline]
pub const fn slice_out(slice: usize, pin: u8) -> Wire {
    assert!(slice < 2 && pin < 4);
    Wire(BASE_SLICE_OUT + (slice as u16) * 4 + pin as u16)
}

/// Slice input; `slice` 0..2, `pin` one of [`slice_in_pin`].
#[inline]
pub const fn slice_in(slice: usize, pin: u8) -> Wire {
    assert!(slice < 2 && (pin as usize) < INPUTS_PER_SLICE);
    Wire(BASE_SLICE_IN + (slice as u16) * INPUTS_PER_SLICE as u16 + pin as u16)
}

/// Single originating here travelling `dir`, index 0..24.
#[inline]
pub const fn single(dir: Dir, idx: usize) -> Wire {
    assert!(idx < SINGLES_PER_DIR);
    Wire(BASE_SINGLE + (dir.index() as u16) * SINGLES_PER_DIR as u16 + idx as u16)
}

/// Single arriving here that travelled `dir` (originating one tile behind).
#[inline]
pub const fn single_end(dir: Dir, idx: usize) -> Wire {
    assert!(idx < SINGLES_PER_DIR);
    Wire(BASE_SINGLE_END + (dir.index() as u16) * SINGLES_PER_DIR as u16 + idx as u16)
}

/// Hex originating here travelling `dir`, index 0..12.
#[inline]
pub const fn hex(dir: Dir, idx: usize) -> Wire {
    assert!(idx < HEXES_PER_DIR);
    Wire(BASE_HEX + (dir.index() as u16) * HEXES_PER_DIR as u16 + idx as u16)
}

/// Hex midpoint tap of a hex that originated three tiles behind `dir`.
#[inline]
pub const fn hex_mid(dir: Dir, idx: usize) -> Wire {
    assert!(idx < HEXES_PER_DIR);
    Wire(BASE_HEX_MID + (dir.index() as u16) * HEXES_PER_DIR as u16 + idx as u16)
}

/// Hex endpoint tap of a hex that originated six tiles behind `dir`.
#[inline]
pub const fn hex_end(dir: Dir, idx: usize) -> Wire {
    assert!(idx < HEXES_PER_DIR);
    Wire(BASE_HEX_END + (dir.index() as u16) * HEXES_PER_DIR as u16 + idx as u16)
}

/// Horizontal long line, index 0..12.
#[inline]
pub const fn long_h(idx: usize) -> Wire {
    assert!(idx < NUM_LONG);
    Wire(BASE_LONG_H + idx as u16)
}

/// Vertical long line, index 0..12.
#[inline]
pub const fn long_v(idx: usize) -> Wire {
    assert!(idx < NUM_LONG);
    Wire(BASE_LONG_V + idx as u16)
}

/// Direct connect originating here toward the east neighbour.
#[inline]
pub const fn direct_e(idx: usize) -> Wire {
    assert!(idx < NUM_DIRECT);
    Wire(BASE_DIRECT_E + idx as u16)
}

/// Direct connect arriving here from the west neighbour.
#[inline]
pub const fn direct_w_end(idx: usize) -> Wire {
    assert!(idx < NUM_DIRECT);
    Wire(BASE_DIRECT_W_END + idx as u16)
}

/// Feedback wire from this CLB's outputs to its own inputs.
#[inline]
pub const fn feedback(idx: usize) -> Wire {
    assert!(idx < NUM_FEEDBACK);
    Wire(BASE_FEEDBACK + idx as u16)
}

/// Dedicated global clock net, index 0..4.
#[inline]
pub const fn gclk(idx: usize) -> Wire {
    assert!(idx < NUM_GCLK);
    Wire(BASE_GCLK + idx as u16)
}

// Named constants matching the paper's examples.
/// Slice 0 output `YQ`.
pub const S0_YQ: Wire = slice_out(0, slice_out_pin::YQ);
/// Slice 1 output `YQ` (source of the paper's running example).
pub const S1_YQ: Wire = slice_out(1, slice_out_pin::YQ);
/// Slice 0 input `F3` (sink of the paper's running example).
pub const S0_F3: Wire = slice_in(0, slice_in_pin::F3);
/// Slice 1 input `F1`.
pub const S1_F1: Wire = slice_in(1, slice_in_pin::F1);

impl Wire {
    /// Decode this local id into its resource kind.
    pub fn kind(self) -> WireKind {
        let v = self.0;
        debug_assert!((v as usize) < NUM_LOCAL_WIRES, "wire id out of range: {v}");
        match v {
            _ if v < BASE_SLICE_OUT => WireKind::Out(v as u8),
            _ if v < BASE_SLICE_IN => {
                let o = v - BASE_SLICE_OUT;
                WireKind::SliceOut {
                    slice: (o / 4) as u8,
                    pin: (o % 4) as u8,
                }
            }
            _ if v < BASE_SINGLE => {
                let o = v - BASE_SLICE_IN;
                WireKind::SliceIn {
                    slice: (o / INPUTS_PER_SLICE as u16) as u8,
                    pin: (o % INPUTS_PER_SLICE as u16) as u8,
                }
            }
            _ if v < BASE_SINGLE_END => {
                let o = v - BASE_SINGLE;
                WireKind::Single {
                    dir: Dir::from_index((o / SINGLES_PER_DIR as u16) as usize),
                    idx: (o % SINGLES_PER_DIR as u16) as u8,
                }
            }
            _ if v < BASE_HEX => {
                let o = v - BASE_SINGLE_END;
                WireKind::SingleEnd {
                    dir: Dir::from_index((o / SINGLES_PER_DIR as u16) as usize),
                    idx: (o % SINGLES_PER_DIR as u16) as u8,
                }
            }
            _ if v < BASE_HEX_MID => {
                let o = v - BASE_HEX;
                WireKind::Hex {
                    dir: Dir::from_index((o / HEXES_PER_DIR as u16) as usize),
                    idx: (o % HEXES_PER_DIR as u16) as u8,
                }
            }
            _ if v < BASE_HEX_END => {
                let o = v - BASE_HEX_MID;
                WireKind::HexMid {
                    dir: Dir::from_index((o / HEXES_PER_DIR as u16) as usize),
                    idx: (o % HEXES_PER_DIR as u16) as u8,
                }
            }
            _ if v < BASE_LONG_H => {
                let o = v - BASE_HEX_END;
                WireKind::HexEnd {
                    dir: Dir::from_index((o / HEXES_PER_DIR as u16) as usize),
                    idx: (o % HEXES_PER_DIR as u16) as u8,
                }
            }
            _ if v < BASE_LONG_V => WireKind::LongH((v - BASE_LONG_H) as u8),
            _ if v < BASE_DIRECT_E => WireKind::LongV((v - BASE_LONG_V) as u8),
            _ if v < BASE_DIRECT_W_END => WireKind::DirectE((v - BASE_DIRECT_E) as u8),
            _ if v < BASE_FEEDBACK => WireKind::DirectWEnd((v - BASE_DIRECT_W_END) as u8),
            _ if v < BASE_GCLK => WireKind::Feedback((v - BASE_FEEDBACK) as u8),
            _ => WireKind::Gclk((v - BASE_GCLK) as u8),
        }
    }

    /// True if this local name denotes a logic-block input pin (a routing
    /// sink).
    #[inline]
    pub fn is_clb_input(self) -> bool {
        (BASE_SLICE_IN..BASE_SINGLE).contains(&self.0)
    }

    /// True if this local name denotes a logic-block output pin (a routing
    /// source).
    #[inline]
    pub fn is_clb_output(self) -> bool {
        (BASE_SLICE_OUT..BASE_SLICE_IN).contains(&self.0)
    }

    /// Iterate every local wire id.
    pub fn all() -> impl Iterator<Item = Wire> {
        (0..NUM_LOCAL_WIRES as u16).map(Wire)
    }

    /// Human-readable name, e.g. `S1_YQ`, `OUT[3]`, `SINGLE_E[5]`.
    pub fn name(self) -> String {
        fn d(dir: Dir) -> char {
            match dir {
                Dir::North => 'N',
                Dir::East => 'E',
                Dir::South => 'S',
                Dir::West => 'W',
            }
        }
        match self.kind() {
            WireKind::Out(j) => format!("OUT[{j}]"),
            WireKind::SliceOut { slice, pin } => {
                let p = ["X", "XQ", "Y", "YQ"][pin as usize];
                format!("S{slice}_{p}")
            }
            WireKind::SliceIn { slice, pin } => {
                let p = [
                    "F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4", "BX", "BY", "CLK", "CE", "SR",
                ][pin as usize];
                format!("S{slice}_{p}")
            }
            WireKind::Single { dir, idx } => format!("SINGLE_{}[{idx}]", d(dir)),
            WireKind::SingleEnd { dir, idx } => format!("SINGLE_{}_END[{idx}]", d(dir)),
            WireKind::Hex { dir, idx } => format!("HEX_{}[{idx}]", d(dir)),
            WireKind::HexMid { dir, idx } => format!("HEX_{}_MID[{idx}]", d(dir)),
            WireKind::HexEnd { dir, idx } => format!("HEX_{}_END[{idx}]", d(dir)),
            WireKind::LongH(i) => format!("LONG_H[{i}]"),
            WireKind::LongV(i) => format!("LONG_V[{i}]"),
            WireKind::DirectE(i) => format!("DIRECT_E[{i}]"),
            WireKind::DirectWEnd(i) => format!("DIRECT_W_END[{i}]"),
            WireKind::Feedback(i) => format!("FEEDBACK[{i}]"),
            WireKind::Gclk(i) => format!("GCLK[{i}]"),
        }
    }
}

impl std::fmt::Display for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_space_is_dense_and_sized() {
        assert_eq!(
            NUM_LOCAL_WIRES,
            NUM_OUT
                + NUM_SLICE_OUT
                + NUM_SLICE_IN
                + 4 * SINGLES_PER_DIR * 2
                + 4 * HEXES_PER_DIR * 3
                + 2 * NUM_LONG
                + 2 * NUM_DIRECT
                + NUM_FEEDBACK
                + NUM_GCLK
        );
    }

    #[test]
    fn kind_round_trips_for_every_wire() {
        for w in Wire::all() {
            let rebuilt = match w.kind() {
                WireKind::Out(j) => out(j as usize),
                WireKind::SliceOut { slice, pin } => slice_out(slice as usize, pin),
                WireKind::SliceIn { slice, pin } => slice_in(slice as usize, pin),
                WireKind::Single { dir, idx } => single(dir, idx as usize),
                WireKind::SingleEnd { dir, idx } => single_end(dir, idx as usize),
                WireKind::Hex { dir, idx } => hex(dir, idx as usize),
                WireKind::HexMid { dir, idx } => hex_mid(dir, idx as usize),
                WireKind::HexEnd { dir, idx } => hex_end(dir, idx as usize),
                WireKind::LongH(i) => long_h(i as usize),
                WireKind::LongV(i) => long_v(i as usize),
                WireKind::DirectE(i) => direct_e(i as usize),
                WireKind::DirectWEnd(i) => direct_w_end(i as usize),
                WireKind::Feedback(i) => feedback(i as usize),
                WireKind::Gclk(i) => gclk(i as usize),
            };
            assert_eq!(rebuilt, w, "round trip failed for {}", w.name());
        }
    }

    #[test]
    fn paper_example_constants_decode() {
        assert_eq!(
            S1_YQ.kind(),
            WireKind::SliceOut {
                slice: 1,
                pin: slice_out_pin::YQ
            }
        );
        assert_eq!(
            S0_F3.kind(),
            WireKind::SliceIn {
                slice: 0,
                pin: slice_in_pin::F3
            }
        );
        assert!(S0_F3.is_clb_input());
        assert!(S1_YQ.is_clb_output());
        assert!(!S1_YQ.is_clb_input());
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in Wire::all() {
            assert!(seen.insert(w.name()), "duplicate name {}", w.name());
        }
    }

    #[test]
    fn resource_census_matches_paper_section_2() {
        // "There are 24 single length lines in each of the four directions."
        let singles = Wire::all()
            .filter(|w| {
                matches!(
                    w.kind(),
                    WireKind::Single {
                        dir: Dir::North,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(singles, 24);
        // "Only 12 [hexes] in each direction can be accessed by any given
        // logic block."
        let hexes = Wire::all()
            .filter(|w| matches!(w.kind(), WireKind::Hex { dir: Dir::East, .. }))
            .count();
        assert_eq!(hexes, 12);
        // "There are also 12 long lines that run horizontal, or vertical."
        let longs_h = Wire::all()
            .filter(|w| matches!(w.kind(), WireKind::LongH(_)))
            .count();
        let longs_v = Wire::all()
            .filter(|w| matches!(w.kind(), WireKind::LongV(_)))
            .count();
        assert_eq!((longs_h, longs_v), (12, 12));
        // "four dedicated global nets"
        let gclks = Wire::all()
            .filter(|w| matches!(w.kind(), WireKind::Gclk(_)))
            .count();
        assert_eq!(gclks, 4);
    }
}
