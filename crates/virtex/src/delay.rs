//! The per-wire-class delay model.
//!
//! The source paper concedes its fan-out router "is not timing driven
//! ... suitable only for non-critical nets" (§3.1). Fixing that requires
//! the *maze router* to price delay, which is why this model lives here
//! rather than in `jroute-timing`: `jroute` (core) depends on `virtex`
//! but not on the timing crate, and both the negotiated-cost blending in
//! `core::maze`/`core::pathfinder` and the arrival analysis in
//! `jroute-timing` must charge identical numbers. `timing::delay`
//! re-exports everything here, so its public API is unchanged.
//!
//! The model is a simple Elmore-flavoured one with per-class constants
//! in picoseconds, shaped like the published Virtex speed
//! characteristics: each PIP adds switch delay, short wires are fast,
//! long buffered lines have a higher but span-independent cost.

use crate::wire::{Wire, WireKind};

/// Delay contributed by one PIP (buffer + switch), in picoseconds.
pub const PIP_DELAY_PS: u64 = 120;

/// Picoseconds per maze-cost unit: the fixed scale that converts the
/// delay model into the same integer cost space the congestion model
/// ([`crate::CostModel`]) uses, so the two can be blended linearly.
pub const PS_PER_COST: u64 = 50;

/// Delay of travelling the given wire, in picoseconds (excludes the PIP
/// that drives it).
pub fn wire_delay_ps(wire: Wire) -> u64 {
    match wire.kind() {
        // Local resources: fast dedicated paths (paper §2: "high-speed
        // connections bypassing the routing matrix").
        WireKind::DirectE(_) | WireKind::DirectWEnd(_) => 60,
        WireKind::Feedback(_) => 50,
        // OMUX: a mux stage.
        WireKind::Out(_) => 80,
        // General-purpose interconnect.
        WireKind::Single { .. } | WireKind::SingleEnd { .. } => 150,
        WireKind::Hex { .. } | WireKind::HexMid { .. } | WireKind::HexEnd { .. } => 350,
        // Longs are buffered: costly to enter, then span-independent
        // ("distribute the signals across the chip quickly", §2).
        WireKind::LongH(_) | WireKind::LongV(_) => 600,
        // Pin connections.
        WireKind::SliceIn { .. } | WireKind::SliceOut { .. } => 0,
        // Dedicated low-skew global network.
        WireKind::Gclk(_) => 100,
    }
}

/// Delay of *entering* `wire` through one PIP, in maze-cost units
/// (`(PIP_DELAY_PS + wire_delay_ps) / PS_PER_COST`). This is the delay
/// analogue of [`crate::CostModel::wire_cost`]: the quantity the maze
/// router charges per expansion when routing timing-driven.
#[inline]
pub fn delay_units(wire: Wire) -> u32 {
    ((PIP_DELAY_PS + wire_delay_ps(wire)) / PS_PER_COST) as u32
}

/// Convert an arrival time in picoseconds to maze-cost units (floor).
#[inline]
pub fn ps_to_units(ps: u64) -> u32 {
    (ps / PS_PER_COST).min(u32::MAX as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wire, Dir};

    #[test]
    fn local_resources_are_fastest() {
        let local = wire_delay_ps(wire::feedback(0));
        for w in [
            wire::single(Dir::East, 0),
            wire::hex(Dir::East, 0),
            wire::long_h(0),
        ] {
            assert!(local < wire_delay_ps(w));
        }
    }

    #[test]
    fn aliases_share_the_segment_delay() {
        assert_eq!(
            wire_delay_ps(wire::single(Dir::East, 3)),
            wire_delay_ps(wire::single_end(Dir::East, 3))
        );
        assert_eq!(
            wire_delay_ps(wire::hex(Dir::South, 1)),
            wire_delay_ps(wire::hex_mid(Dir::South, 1))
        );
    }

    #[test]
    fn hexes_beat_singles_per_clb_in_units_too() {
        // A hex closes six CLBs for one entry; per CLB it must undercut
        // singles or the timing-driven cost would never prefer it.
        let hex = delay_units(wire::hex(Dir::North, 0));
        let single = delay_units(wire::single(Dir::North, 0));
        assert!(hex < single * crate::wire::HEX_SPAN as u32);
        assert!(hex > single, "but one hex entry still beats one single");
    }

    #[test]
    fn unit_conversion_floors_consistently() {
        assert_eq!(ps_to_units(0), 0);
        assert_eq!(ps_to_units(PS_PER_COST - 1), 0);
        assert_eq!(ps_to_units(PS_PER_COST), 1);
        assert_eq!(
            delay_units(wire::single(Dir::East, 0)),
            ps_to_units(PIP_DELAY_PS + wire_delay_ps(wire::single(Dir::East, 0)))
        );
    }
}
