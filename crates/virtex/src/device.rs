//! The device: a family member plus its architecture description.

use crate::arch::Arch;
use crate::family::Family;
use crate::geometry::{Dims, RowCol};
use crate::segment::{self, Segment};
use crate::segspace::SegSpace;
use crate::wire::{Wire, NUM_LOCAL_WIRES};

/// A (simulated) Virtex device: geometry plus architecture description.
///
/// Cheap to construct and copy; all connectivity is closed-form in
/// [`Arch`].
#[derive(Debug, Clone, Copy)]
pub struct Device {
    family: Family,
    arch: Arch,
}

impl Device {
    /// Create a device of the given family.
    pub fn new(family: Family) -> Self {
        Device {
            family,
            arch: Arch::new(family.dims()),
        }
    }

    #[inline]
    /// The family member this device belongs to.
    pub fn family(&self) -> Family {
        self.family
    }

    #[inline]
    /// CLB array dimensions.
    pub fn dims(&self) -> Dims {
        self.family.dims()
    }

    #[inline]
    /// The architecture description class (paper §3).
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// Size of the dense canonical-segment index space
    /// (`dims.tiles() * NUM_LOCAL_WIRES`); see [`Segment::index`].
    #[inline]
    pub fn segment_space(&self) -> usize {
        self.dims().tiles() * NUM_LOCAL_WIRES
    }

    /// The dense canonical-segment index space of this device; the
    /// substrate for [`SegVec`](crate::segspace::SegVec)-backed router
    /// state.
    #[inline]
    pub fn seg_space(&self) -> SegSpace {
        SegSpace::new(self.dims())
    }

    /// The precomputed distance-lookahead table for this device's
    /// geometry (built on first use, cached for the process lifetime —
    /// the heap-owning sibling of [`Device::seg_space`]).
    #[inline]
    pub fn lookahead(&self) -> &'static crate::lookahead::Lookahead {
        crate::lookahead::Lookahead::get(self.dims())
    }

    /// Resolve a local `(tile, wire)` name to its canonical segment.
    #[inline]
    pub fn canonicalize(&self, rc: RowCol, wire: Wire) -> Option<Segment> {
        segment::canonicalize(self.dims(), rc, wire)
    }

    /// Whether `wire` exists at `rc` on this device.
    #[inline]
    pub fn wire_exists(&self, rc: RowCol, wire: Wire) -> bool {
        segment::wire_exists(self.dims(), rc, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dir;
    use crate::wire;

    #[test]
    fn device_exposes_family_geometry() {
        let dev = Device::new(Family::Xcv50);
        assert_eq!(dev.dims(), Dims::new(16, 24));
        assert_eq!(dev.family().name(), "XCV50");
        assert_eq!(dev.segment_space(), 16 * 24 * NUM_LOCAL_WIRES);
    }

    #[test]
    fn canonicalize_delegates() {
        let dev = Device::new(Family::Xcv50);
        let seg = dev
            .canonicalize(RowCol::new(5, 8), wire::single_end(Dir::East, 5))
            .unwrap();
        assert_eq!(seg.rc, RowCol::new(5, 7));
        assert!(dev.wire_exists(RowCol::new(5, 7), wire::single(Dir::East, 5)));
        assert!(!dev.wire_exists(RowCol::new(15, 0), wire::single(Dir::North, 0)));
    }
}
