//! Hand-rolled binary and text encodings for the architecture types.
//!
//! The workspace builds hermetically (no registry crates), so the serde
//! derives these types used to carry are replaced by a small explicit
//! [`Codec`] trait: a fixed-width little-endian binary form, plus
//! `FromStr` parsers for the types with an established `Display` form
//! (`Family`, `RowCol`, `Wire` names, `Segment`). Every impl is
//! round-trip-tested below; external tools can rely on both formats
//! being stable.

use crate::family::Family;
use crate::geometry::{Dims, Dir, RowCol};
use crate::segment::Segment;
use crate::template::TemplateValue;
use crate::wire::Wire;

/// Stable binary encode/decode.
///
/// `decode` consumes its bytes from the front of `input` and returns
/// `None` on truncated or invalid data, leaving `input` unspecified.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// Encoding as a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a value that must occupy `bytes` exactly.
    fn from_bytes(mut bytes: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut bytes)?;
        bytes.is_empty().then_some(v)
    }
}

fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = input.split_first()?;
    *input = rest;
    Some(b)
}

fn take_u16(input: &mut &[u8]) -> Option<u16> {
    let (bytes, rest) = input.split_first_chunk::<2>()?;
    *input = rest;
    Some(u16::from_le_bytes(*bytes))
}

impl Codec for Dir {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let i = take_u8(input)?;
        (i < 4).then(|| Dir::from_index(i as usize))
    }
}

/// Tag order for the `Family` binary form: the real parts first (their
/// tags predate the synthetic tier and must not move), the synthetic
/// super-Virtex rows appended after. Append only.
fn family_tag_table() -> impl Iterator<Item = Family> {
    Family::ALL.into_iter().chain(Family::SYNTHETIC)
}

impl Codec for Family {
    fn encode(&self, out: &mut Vec<u8>) {
        let idx = family_tag_table()
            .position(|f| f == *self)
            .expect("family in tag table");
        out.push(idx as u8);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        family_tag_table().nth(take_u8(input)? as usize)
    }
}

impl Codec for RowCol {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.row.to_le_bytes());
        out.extend_from_slice(&self.col.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(RowCol::new(take_u16(input)?, take_u16(input)?))
    }
}

impl Codec for Dims {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.cols.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Dims::new(take_u16(input)?, take_u16(input)?))
    }
}

impl Codec for Wire {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let id = take_u16(input)?;
        ((id as usize) < crate::wire::NUM_LOCAL_WIRES).then_some(Wire(id))
    }
}

impl Codec for Segment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rc.encode(out);
        self.wire.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Segment {
            rc: RowCol::decode(input)?,
            wire: Wire::decode(input)?,
        })
    }
}

/// All template values, in encoding-tag order. The order is part of the
/// binary format; append only.
pub const TEMPLATE_VALUES: [TemplateValue; 16] = [
    TemplateValue::North1,
    TemplateValue::East1,
    TemplateValue::South1,
    TemplateValue::West1,
    TemplateValue::North6,
    TemplateValue::East6,
    TemplateValue::South6,
    TemplateValue::West6,
    TemplateValue::LongH,
    TemplateValue::LongV,
    TemplateValue::OutMux,
    TemplateValue::ClbIn,
    TemplateValue::ClbOut,
    TemplateValue::Direct,
    TemplateValue::Feedback,
    TemplateValue::Global,
];

impl Codec for TemplateValue {
    fn encode(&self, out: &mut Vec<u8>) {
        let idx = TEMPLATE_VALUES
            .iter()
            .position(|t| t == self)
            .expect("template in table");
        out.push(idx as u8);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        TEMPLATE_VALUES.get(take_u8(input)? as usize).copied()
    }
}

/// Error for the text parsers below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    what: &'static str,
    input: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: {:?}", self.what, self.input)
    }
}

impl std::error::Error for ParseError {}

fn parse_err(what: &'static str, input: &str) -> ParseError {
    ParseError {
        what,
        input: input.to_string(),
    }
}

impl std::str::FromStr for Family {
    type Err = ParseError;

    /// Inverse of [`Family::name`], e.g. `"XCV300"` or `"SUPER4"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        family_tag_table()
            .find(|f| f.name().eq_ignore_ascii_case(s.trim()))
            .ok_or_else(|| parse_err("family name", s))
    }
}

impl std::str::FromStr for RowCol {
    type Err = ParseError;

    /// Inverse of the `Display` form `(row,col)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| parse_err("tile coordinate", s))?;
        let (r, c) = body
            .split_once(',')
            .ok_or_else(|| parse_err("tile coordinate", s))?;
        Ok(RowCol::new(
            r.trim().parse().map_err(|_| parse_err("tile row", s))?,
            c.trim().parse().map_err(|_| parse_err("tile column", s))?,
        ))
    }
}

impl std::str::FromStr for Wire {
    type Err = ParseError;

    /// Inverse of [`Wire::name`], e.g. `"S1_YQ"` or `"SINGLE_E[5]"`.
    /// The id space is small (430 names), so a scan suffices.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let want = s.trim();
        Wire::all()
            .find(|w| w.name() == want)
            .ok_or_else(|| parse_err("wire name", s))
    }
}

impl std::str::FromStr for Segment {
    type Err = ParseError;

    /// Inverse of the `Display` form `WIRE@(row,col)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (wire, rc) = s
            .trim()
            .rsplit_once('@')
            .ok_or_else(|| parse_err("segment", s))?;
        Ok(Segment {
            rc: rc.parse()?,
            wire: wire.parse()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Some(v), "binary round trip");
    }

    #[test]
    fn binary_round_trips_every_dir_family_template() {
        for d in Dir::ALL {
            round_trip(d);
        }
        for f in Family::ALL.into_iter().chain(Family::SYNTHETIC) {
            round_trip(f);
        }
        for t in TEMPLATE_VALUES {
            round_trip(t);
        }
    }

    #[test]
    fn family_tags_are_append_only() {
        // Real parts keep their pre-synthetic tags; the synthetic tier
        // extends the table without renumbering.
        assert_eq!(Family::Xcv50.to_bytes(), vec![0]);
        assert_eq!(Family::Xcv1000.to_bytes(), vec![7]);
        assert_eq!(Family::Super2.to_bytes(), vec![8]);
        assert_eq!(Family::Super8.to_bytes(), vec![10]);
        assert_eq!(Family::from_bytes(&[11]), None);
    }

    #[test]
    fn binary_round_trips_every_wire() {
        for w in Wire::all() {
            round_trip(w);
        }
    }

    #[test]
    fn binary_round_trips_geometry_and_segments() {
        for f in Family::ALL {
            round_trip(f.dims());
        }
        for rc in [RowCol::new(0, 0), RowCol::new(15, 23), RowCol::new(300, 7)] {
            round_trip(rc);
            round_trip(Segment { rc, wire: Wire(41) });
        }
    }

    #[test]
    fn decode_rejects_truncated_and_invalid_input() {
        assert_eq!(RowCol::from_bytes(&[1, 0, 2]), None, "truncated");
        assert_eq!(Dir::from_bytes(&[9]), None, "bad dir tag");
        assert_eq!(Family::from_bytes(&[200]), None, "bad family tag");
        assert_eq!(TemplateValue::from_bytes(&[16]), None, "bad template tag");
        assert_eq!(
            Wire::from_bytes(&[0xFF, 0xFF]),
            None,
            "wire id out of range"
        );
        assert_eq!(RowCol::from_bytes(&[1, 0, 2, 0, 3]), None, "trailing bytes");
    }

    #[test]
    fn concatenated_stream_decodes_in_order() {
        let a = Segment {
            rc: RowCol::new(3, 4),
            wire: Wire(7),
        };
        let b = Segment {
            rc: RowCol::new(60, 90),
            wire: Wire(429),
        };
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(Segment::decode(&mut input), Some(a));
        assert_eq!(Segment::decode(&mut input), Some(b));
        assert!(input.is_empty());
    }

    #[test]
    fn text_round_trips_display_forms() {
        for f in Family::ALL.into_iter().chain(Family::SYNTHETIC) {
            assert_eq!(f.to_string().parse::<Family>().unwrap(), f);
        }
        assert_eq!("xcv50".parse::<Family>().unwrap(), Family::Xcv50);
        assert_eq!("super4".parse::<Family>().unwrap(), Family::Super4);
        for rc in [RowCol::new(0, 0), RowCol::new(12, 34)] {
            assert_eq!(rc.to_string().parse::<RowCol>().unwrap(), rc);
        }
        for w in Wire::all().step_by(17) {
            assert_eq!(w.name().parse::<Wire>().unwrap(), w);
        }
        let seg = Segment {
            rc: RowCol::new(5, 9),
            wire: Wire(100),
        };
        assert_eq!(seg.to_string().parse::<Segment>().unwrap(), seg);
    }

    #[test]
    fn text_parsers_reject_garbage() {
        assert!("XCV9000".parse::<Family>().is_err());
        assert!("5,9".parse::<RowCol>().is_err());
        assert!("(5;9)".parse::<RowCol>().is_err());
        assert!("NOT_A_WIRE".parse::<Wire>().is_err());
        assert!("S0_YQ(5,9)".parse::<Segment>().is_err());
    }
}
