//! # virtex — a simulated Virtex-class FPGA routing fabric
//!
//! This crate is the *architecture substrate* of the JRoute reproduction:
//! the paper's "architecture description class" (§3) plus the device
//! geometry of §2, implemented as a simulator. It knows nothing about
//! routing algorithms or configuration state; it only answers structural
//! questions:
//!
//! * what wires exist at a tile ([`wire`], [`segment::wire_exists`]);
//! * which physical segment a local name refers to ([`segment`]);
//! * which wire can drive which other wire through a GRM PIP
//!   ([`arch::Arch`]);
//! * how wires classify into template values ([`template`]);
//! * the Virtex family table ([`family::Family`]).
//!
//! The real Virtex bit-level data is proprietary; see `DESIGN.md` for the
//! substitution argument (the published topology and drive rules from the
//! paper's §2 are preserved exactly; GRM fan-out patterns are synthetic
//! but deterministic and of the real sparsity).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod codec;
pub mod delay;
pub mod device;
pub mod family;
pub mod geometry;
pub mod lookahead;
pub mod segment;
pub mod segspace;
pub mod template;
pub mod wire;

pub use arch::Arch;
pub use codec::Codec;
pub use device::Device;
pub use family::Family;
pub use geometry::{BBox, Dims, Dir, RowCol};
pub use lookahead::{CostModel, Lookahead};
pub use segment::{Segment, Tap};
pub use segspace::{SegIdx, SegSpace, SegVec, StampedSegVec};
pub use template::{template_value, TemplateValue};
pub use wire::{Wire, WireKind};
