//! The Virtex device family table.
//!
//! The paper (§2): *"The array sizes for Virtex range from 16x24 CLBs to
//! 64x96 CLBs."* We model the published CLB array sizes of the Virtex
//! family (XCV50 … XCV1000). Only the CLB array geometry matters to
//! JRoute; package/IOB data is out of scope (paper §6 lists IOB support as
//! future work).
//!
//! Beyond the real parts, the table carries a *synthetic* super-Virtex
//! tier ([`Family::SYNTHETIC`]): the same 2:3 CLB aspect ratio continued
//! to 2–8× the XCV1000 tile count. No such silicon existed; the members
//! exist so the scaling experiments (E10/E15/E18) can measure router
//! behaviour past the largest real array, where partition-parallel
//! negotiation actually earns its cost. They are deliberately kept out
//! of [`Family::ALL`]: census-style experiments that sweep "the Virtex
//! family" mean the parts the paper names.

use crate::geometry::Dims;

/// A member of the (simulated) Virtex family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// 16 x 24 CLBs — the smallest Virtex array (XCV50-class).
    Xcv50,
    /// 20 x 30 CLBs (XCV100-class).
    Xcv100,
    /// 28 x 42 CLBs (XCV200-class).
    Xcv200,
    /// 32 x 48 CLBs (XCV300-class).
    Xcv300,
    /// 40 x 60 CLBs (XCV400-class).
    Xcv400,
    /// 48 x 72 CLBs (XCV600-class).
    Xcv600,
    /// 56 x 84 CLBs (XCV800-class).
    Xcv800,
    /// 64 x 96 CLBs — the largest Virtex array (XCV1000-class).
    Xcv1000,
    /// 90 x 135 CLBs — synthetic, ~2× the XCV1000 tile count.
    Super2,
    /// 128 x 192 CLBs — synthetic, 4× the XCV1000 tile count.
    Super4,
    /// 180 x 270 CLBs — synthetic, ~8× the XCV1000 tile count.
    Super8,
}

impl Family {
    /// All *real* family members, smallest first. Synthetic super-Virtex
    /// rows live in [`Family::SYNTHETIC`] instead, so sweeps over "the
    /// family the paper describes" stay exactly that.
    pub const ALL: [Family; 8] = [
        Family::Xcv50,
        Family::Xcv100,
        Family::Xcv200,
        Family::Xcv300,
        Family::Xcv400,
        Family::Xcv600,
        Family::Xcv800,
        Family::Xcv1000,
    ];

    /// The synthetic super-Virtex tier, smallest first.
    pub const SYNTHETIC: [Family; 3] = [Family::Super2, Family::Super4, Family::Super8];

    /// CLB array dimensions.
    pub const fn dims(self) -> Dims {
        match self {
            Family::Xcv50 => Dims::new(16, 24),
            Family::Xcv100 => Dims::new(20, 30),
            Family::Xcv200 => Dims::new(28, 42),
            Family::Xcv300 => Dims::new(32, 48),
            Family::Xcv400 => Dims::new(40, 60),
            Family::Xcv600 => Dims::new(48, 72),
            Family::Xcv800 => Dims::new(56, 84),
            Family::Xcv1000 => Dims::new(64, 96),
            Family::Super2 => Dims::new(90, 135),
            Family::Super4 => Dims::new(128, 192),
            Family::Super8 => Dims::new(180, 270),
        }
    }

    /// Marketing-style name (invented for the synthetic tier).
    pub const fn name(self) -> &'static str {
        match self {
            Family::Xcv50 => "XCV50",
            Family::Xcv100 => "XCV100",
            Family::Xcv200 => "XCV200",
            Family::Xcv300 => "XCV300",
            Family::Xcv400 => "XCV400",
            Family::Xcv600 => "XCV600",
            Family::Xcv800 => "XCV800",
            Family::Xcv1000 => "XCV1000",
            Family::Super2 => "SUPER2",
            Family::Super4 => "SUPER4",
            Family::Super8 => "SUPER8",
        }
    }

    /// Whether this member is one of the synthetic super-Virtex rows.
    pub const fn is_synthetic(self) -> bool {
        matches!(self, Family::Super2 | Family::Super4 | Family::Super8)
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_range_matches_paper() {
        // §2: "array sizes for Virtex range from 16x24 CLBs to 64x96 CLBs"
        assert_eq!(Family::Xcv50.dims(), Dims::new(16, 24));
        assert_eq!(Family::Xcv1000.dims(), Dims::new(64, 96));
    }

    #[test]
    fn families_are_strictly_increasing() {
        let mut prev = 0usize;
        for f in Family::ALL.into_iter().chain(Family::SYNTHETIC) {
            let t = f.dims().tiles();
            assert!(t > prev, "{f} not larger than its predecessor");
            prev = t;
        }
    }

    #[test]
    fn aspect_ratio_is_2_to_3() {
        for f in Family::ALL.into_iter().chain(Family::SYNTHETIC) {
            let d = f.dims();
            assert_eq!(d.rows as u32 * 3, d.cols as u32 * 2, "{f} aspect ratio");
        }
    }

    #[test]
    fn synthetic_tier_scales_past_the_largest_real_part() {
        let base = Family::Xcv1000.dims().tiles();
        assert!(Family::ALL.iter().all(|f| !f.is_synthetic()));
        assert!(Family::SYNTHETIC.iter().all(|f| f.is_synthetic()));
        let factors: Vec<usize> = Family::SYNTHETIC
            .iter()
            .map(|f| f.dims().tiles() / base)
            .collect();
        assert_eq!(factors, vec![1, 4, 7], "~2x / 4x / ~8x the XCV1000");
        assert!(Family::Super2.dims().tiles() >= base * 19 / 10);
        assert!(Family::Super8.dims().tiles() >= base * 79 / 10);
    }
}
