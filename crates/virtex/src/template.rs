//! Template values.
//!
//! Paper §3: *"A template value is defined as a value describing a
//! direction and a resource type. For example, a template value of NORTH6
//! describes any hex wire in the north direction, a template value of
//! NORTH1 describes any single wire in the north direction."*
//!
//! Every wire classifies under exactly one template value (also part of
//! the paper's architecture description class).

use crate::geometry::Dir;
use crate::wire::{Wire, WireKind};

/// A direction + resource-type class of wires, used to steer the
/// template-based router without naming specific resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateValue {
    /// Any single wire travelling north (paper: `NORTH1`).
    North1,
    /// Any single wire travelling east (`EAST1`).
    East1,
    /// Any single wire travelling south (`SOUTH1`).
    South1,
    /// Any single wire travelling west (`WEST1`).
    West1,
    /// Any hex wire travelling north (`NORTH6`).
    North6,
    /// Any hex wire travelling east (`EAST6`).
    East6,
    /// Any hex wire travelling south (`SOUTH6`).
    South6,
    /// Any hex wire travelling west (`WEST6`).
    West6,
    /// Any horizontal long line.
    LongH,
    /// Any vertical long line.
    LongV,
    /// Any OMUX output (`OUTMUX` in the paper's example).
    OutMux,
    /// Any logic-block input pin (`CLBIN` in the paper's example).
    ClbIn,
    /// Any logic-block output pin.
    ClbOut,
    /// Any direct connect to the horizontally adjacent CLB.
    Direct,
    /// Any feedback wire within a CLB.
    Feedback,
    /// Any dedicated global clock net.
    Global,
}

impl TemplateValue {
    /// The single-wire class for `dir`.
    pub const fn single(dir: Dir) -> TemplateValue {
        match dir {
            Dir::North => TemplateValue::North1,
            Dir::East => TemplateValue::East1,
            Dir::South => TemplateValue::South1,
            Dir::West => TemplateValue::West1,
        }
    }

    /// The hex-wire class for `dir`.
    pub const fn hex(dir: Dir) -> TemplateValue {
        match dir {
            Dir::North => TemplateValue::North6,
            Dir::East => TemplateValue::East6,
            Dir::South => TemplateValue::South6,
            Dir::West => TemplateValue::West6,
        }
    }

    /// Direction of travel, when this class has one.
    pub const fn dir(self) -> Option<Dir> {
        match self {
            TemplateValue::North1 | TemplateValue::North6 => Some(Dir::North),
            TemplateValue::East1 | TemplateValue::East6 => Some(Dir::East),
            TemplateValue::South1 | TemplateValue::South6 => Some(Dir::South),
            TemplateValue::West1 | TemplateValue::West6 => Some(Dir::West),
            _ => None,
        }
    }

    /// CLB distance covered by one wire of this class (0 for local
    /// resources, chip-spanning longs report 0 as they have no fixed hop).
    pub const fn hop_length(self) -> u16 {
        match self {
            TemplateValue::North1
            | TemplateValue::East1
            | TemplateValue::South1
            | TemplateValue::West1 => 1,
            TemplateValue::North6
            | TemplateValue::East6
            | TemplateValue::South6
            | TemplateValue::West6 => 6,
            _ => 0,
        }
    }
}

/// The template value under which `wire` classifies.
///
/// Alias names (arriving ends, hex taps) classify with their travel
/// direction, so a template step matches a wire wherever the router
/// touches it.
pub fn template_value(wire: Wire) -> TemplateValue {
    match wire.kind() {
        WireKind::Out(_) => TemplateValue::OutMux,
        WireKind::SliceOut { .. } => TemplateValue::ClbOut,
        WireKind::SliceIn { .. } => TemplateValue::ClbIn,
        WireKind::Single { dir, .. } | WireKind::SingleEnd { dir, .. } => {
            TemplateValue::single(dir)
        }
        WireKind::Hex { dir, .. } | WireKind::HexMid { dir, .. } | WireKind::HexEnd { dir, .. } => {
            TemplateValue::hex(dir)
        }
        WireKind::LongH(_) => TemplateValue::LongH,
        WireKind::LongV(_) => TemplateValue::LongV,
        WireKind::DirectE(_) | WireKind::DirectWEnd(_) => TemplateValue::Direct,
        WireKind::Feedback(_) => TemplateValue::Feedback,
        WireKind::Gclk(_) => TemplateValue::Global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn every_wire_classifies() {
        // The paper requires every wire to carry a template classification;
        // template_value is total, so just spot-check the mapping.
        assert_eq!(template_value(wire::out(3)), TemplateValue::OutMux);
        assert_eq!(template_value(wire::S0_F3), TemplateValue::ClbIn);
        assert_eq!(
            template_value(wire::single(Dir::North, 5)),
            TemplateValue::North1
        );
        assert_eq!(
            template_value(wire::single_end(Dir::North, 5)),
            TemplateValue::North1
        );
        assert_eq!(
            template_value(wire::hex(Dir::West, 2)),
            TemplateValue::West6
        );
        assert_eq!(
            template_value(wire::hex_mid(Dir::West, 2)),
            TemplateValue::West6
        );
        assert_eq!(template_value(wire::long_h(0)), TemplateValue::LongH);
        assert_eq!(template_value(wire::gclk(1)), TemplateValue::Global);
    }

    #[test]
    fn dirs_and_hop_lengths() {
        assert_eq!(TemplateValue::North6.dir(), Some(Dir::North));
        assert_eq!(TemplateValue::North6.hop_length(), 6);
        assert_eq!(TemplateValue::West1.hop_length(), 1);
        assert_eq!(TemplateValue::OutMux.dir(), None);
        assert_eq!(TemplateValue::single(Dir::East), TemplateValue::East1);
        assert_eq!(TemplateValue::hex(Dir::South), TemplateValue::South6);
    }
}
