//! Grid geometry: directions, CLB coordinates and device dimensions.
//!
//! The device is a rectangular array of CLB tiles. Rows increase to the
//! *north*, columns increase to the *east* (the convention used by the
//! JRoute paper's `(row, col)` call signatures).

/// One of the four routing directions of the Virtex general routing fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Increasing row.
    North,
    /// Increasing column.
    East,
    /// Decreasing row.
    South,
    /// Decreasing column.
    West,
}

impl Dir {
    /// All four directions, in canonical (N, E, S, W) order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Stable small index (N=0, E=1, S=2, W=3) used by the connectivity
    /// pattern formulas in [`crate::arch`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// Direction obtained by reversing this one.
    #[inline]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Unit step `(d_row, d_col)` for one CLB in this direction.
    #[inline]
    pub const fn delta(self) -> (i32, i32) {
        match self {
            Dir::North => (1, 0),
            Dir::East => (0, 1),
            Dir::South => (-1, 0),
            Dir::West => (0, -1),
        }
    }

    /// True for the vertical (North/South) directions.
    #[inline]
    pub const fn is_vertical(self) -> bool {
        matches!(self, Dir::North | Dir::South)
    }

    /// Inverse of [`Dir::index`].
    #[inline]
    pub const fn from_index(i: usize) -> Dir {
        match i {
            0 => Dir::North,
            1 => Dir::East,
            2 => Dir::South,
            _ => Dir::West,
        }
    }
}

/// Coordinates of one CLB tile: `(row, col)`, both 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowCol {
    /// Row index, increasing to the north.
    pub row: u16,
    /// Column index, increasing to the east.
    pub col: u16,
}

impl RowCol {
    /// Tile at `(row, col)`.
    #[inline]
    pub const fn new(row: u16, col: u16) -> Self {
        RowCol { row, col }
    }

    /// Step `n` CLBs in direction `dir`. Returns `None` when the result
    /// falls off the edge of a `dims`-sized device.
    #[inline]
    pub fn step(self, dir: Dir, n: u16, dims: Dims) -> Option<RowCol> {
        let (dr, dc) = dir.delta();
        let r = self.row as i32 + dr * n as i32;
        let c = self.col as i32 + dc * n as i32;
        if r < 0 || c < 0 || r >= dims.rows as i32 || c >= dims.cols as i32 {
            None
        } else {
            Some(RowCol::new(r as u16, c as u16))
        }
    }

    /// Step without a bounds check; caller must know the result is on-chip.
    #[inline]
    pub fn step_unchecked(self, dir: Dir, n: u16) -> RowCol {
        let (dr, dc) = dir.delta();
        RowCol::new(
            (self.row as i32 + dr * n as i32) as u16,
            (self.col as i32 + dc * n as i32) as u16,
        )
    }

    /// Manhattan distance between two tiles.
    #[inline]
    pub fn manhattan(self, other: RowCol) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }
}

impl std::fmt::Display for RowCol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Inclusive axis-aligned rectangle of CLB tiles.
///
/// Used by the routers to restrict maze expansion to the neighbourhood of a
/// net's terminals (PathFinder-style region pruning). The box is inclusive on
/// both corners so a degenerate single-tile net is still a valid region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BBox {
    /// South-west corner (smallest row/col), inclusive.
    pub min: RowCol,
    /// North-east corner (largest row/col), inclusive.
    pub max: RowCol,
}

impl BBox {
    /// Degenerate box covering exactly one tile.
    #[inline]
    pub const fn at(rc: RowCol) -> Self {
        BBox { min: rc, max: rc }
    }

    /// Smallest box covering every point, or `None` for an empty iterator.
    pub fn of(points: impl IntoIterator<Item = RowCol>) -> Option<BBox> {
        let mut it = points.into_iter();
        let mut b = BBox::at(it.next()?);
        for rc in it {
            b.include(rc);
        }
        Some(b)
    }

    /// Grow the box (in place) to cover `rc`.
    #[inline]
    pub fn include(&mut self, rc: RowCol) {
        self.min.row = self.min.row.min(rc.row);
        self.min.col = self.min.col.min(rc.col);
        self.max.row = self.max.row.max(rc.row);
        self.max.col = self.max.col.max(rc.col);
    }

    /// Box expanded by `margin` tiles on every side, clamped to `dims`.
    #[inline]
    pub fn expand(self, margin: u16, dims: Dims) -> BBox {
        BBox {
            min: RowCol::new(
                self.min.row.saturating_sub(margin),
                self.min.col.saturating_sub(margin),
            ),
            max: RowCol::new(
                (self.max.row.saturating_add(margin)).min(dims.rows.saturating_sub(1)),
                (self.max.col.saturating_add(margin)).min(dims.cols.saturating_sub(1)),
            ),
        }
    }

    /// Whether `rc` lies inside the box (inclusive).
    #[inline]
    pub const fn contains(self, rc: RowCol) -> bool {
        rc.row >= self.min.row
            && rc.row <= self.max.row
            && rc.col >= self.min.col
            && rc.col <= self.max.col
    }

    /// Whether the box already covers the whole `dims` grid (a contains
    /// check would be a no-op, so callers can skip bounding entirely).
    #[inline]
    pub const fn covers(self, dims: Dims) -> bool {
        self.min.row == 0
            && self.min.col == 0
            && self.max.row + 1 >= dims.rows
            && self.max.col + 1 >= dims.cols
    }
}

/// Array dimensions of a device, in CLBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    /// Number of CLB rows.
    pub rows: u16,
    /// Number of CLB columns.
    pub cols: u16,
}

impl Dims {
    /// Dimensions of `rows` x `cols` CLBs.
    #[inline]
    pub const fn new(rows: u16, cols: u16) -> Self {
        Dims { rows, cols }
    }

    /// Number of CLB tiles.
    #[inline]
    pub const fn tiles(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Dense index of a tile, row-major.
    #[inline]
    pub const fn tile_index(self, rc: RowCol) -> usize {
        rc.row as usize * self.cols as usize + rc.col as usize
    }

    /// Inverse of [`Dims::tile_index`].
    #[inline]
    pub const fn tile_at(self, index: usize) -> RowCol {
        RowCol::new(
            (index / self.cols as usize) as u16,
            (index % self.cols as usize) as u16,
        )
    }

    /// Whether `rc` lies on this device.
    #[inline]
    pub const fn contains(self, rc: RowCol) -> bool {
        rc.row < self.rows && rc.col < self.cols
    }

    /// Iterate all tiles in row-major order.
    pub fn iter_tiles(self) -> impl Iterator<Item = RowCol> {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| RowCol::new(r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_opposites_are_involutions() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn dir_index_round_trips() {
        for d in Dir::ALL {
            assert_eq!(Dir::from_index(d.index()), d);
        }
    }

    #[test]
    fn deltas_sum_to_zero_over_all_dirs() {
        let (mut r, mut c) = (0, 0);
        for d in Dir::ALL {
            let (dr, dc) = d.delta();
            r += dr;
            c += dc;
        }
        assert_eq!((r, c), (0, 0));
    }

    #[test]
    fn step_stays_on_chip_or_returns_none() {
        let dims = Dims::new(16, 24);
        let rc = RowCol::new(0, 0);
        assert_eq!(rc.step(Dir::South, 1, dims), None);
        assert_eq!(rc.step(Dir::West, 1, dims), None);
        assert_eq!(rc.step(Dir::North, 1, dims), Some(RowCol::new(1, 0)));
        assert_eq!(rc.step(Dir::East, 6, dims), Some(RowCol::new(0, 6)));
        assert_eq!(RowCol::new(15, 23).step(Dir::North, 1, dims), None);
        assert_eq!(RowCol::new(15, 23).step(Dir::East, 1, dims), None);
    }

    #[test]
    fn tile_index_round_trips() {
        let dims = Dims::new(16, 24);
        for rc in dims.iter_tiles() {
            assert_eq!(dims.tile_at(dims.tile_index(rc)), rc);
        }
        assert_eq!(dims.iter_tiles().count(), dims.tiles());
    }

    #[test]
    fn bbox_of_includes_every_point_and_expand_clamps() {
        let dims = Dims::new(16, 24);
        let pts = [RowCol::new(3, 7), RowCol::new(9, 2), RowCol::new(5, 5)];
        let b = BBox::of(pts).unwrap();
        assert_eq!(b.min, RowCol::new(3, 2));
        assert_eq!(b.max, RowCol::new(9, 7));
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(!b.contains(RowCol::new(2, 2)));
        assert!(!b.contains(RowCol::new(9, 8)));
        let g = b.expand(4, dims);
        assert_eq!(g.min, RowCol::new(0, 0));
        assert_eq!(g.max, RowCol::new(13, 11));
        assert!(b.expand(100, dims).covers(dims));
        assert!(!g.covers(dims));
        assert_eq!(BBox::of(std::iter::empty()), None);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = RowCol::new(3, 7);
        let b = RowCol::new(9, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 6 + 5);
        assert_eq!(a.manhattan(a), 0);
    }
}
