//! Precomputed distance lookahead for A*-guided maze routing.
//!
//! The maze router used to re-derive a weighted Manhattan heuristic on
//! every pop. That estimate is *inadmissible* under the fabric's real
//! cost profile (hexes move six CLBs for one entry cost, direct-east
//! wires cross a column for two), which forced a weight-and-clamp
//! compromise in the queue keys. This module replaces it with a small
//! per-device table: for each axis distance `d`, the provably minimal
//! cost any combination of routing wires can pay to close `d` CLBs.
//!
//! The table is a shortest-path computation over "distance space": node
//! `d` is *an axis distance of d tiles to the goal*, and every wire
//! class contributes edges `d -> |d - reach|` and `d -> d + reach`
//! (paths may overshoot or detour, bounded by the device edge) at its
//! entry cost. Wires that close no distance on the axis (outputs,
//! feedbacks, slice inputs) map to zero-length moves and drop out. The
//! result is a true lower bound on remaining path cost: at weight 1 the
//! search is admissible, and any weighted-A* focusing on top of it
//! (`MazeConfig::heuristic_weight` in `jroute`) inflates path cost by
//! at most that factor — a far tighter bargain than weighting an
//! already-inadmissible Manhattan estimate.
//!
//! Tables are built once per device geometry and cached in a global
//! registry keyed by [`Dims`] (the same way [`crate::SegSpace`] is a
//! cheap pure function of `Dims`), because [`crate::Device`] is `Copy`
//! and cannot own heap state.

use crate::delay::delay_units;
use crate::geometry::{Dims, RowCol};
use crate::segment::Segment;
use crate::wire::{self, Wire, WireKind, HEX_SPAN, LONG_ACCESS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Base cost of *entering* a segment, by resource class. Hexes cost 1
/// per CLB travelled; singles are relatively more expensive per CLB,
/// which steers long connections onto hexes exactly as on the real
/// fabric. This is the single source of truth for wire entry costs:
/// the maze router charges from it and the lookahead lower-bounds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// CLB input pins (F/G LUT inputs and control).
    pub slice_in: u32,
    /// Slice outputs, direct-east hops and feedback lines.
    pub out: u32,
    /// Single-length lines (1 CLB of reach).
    pub single: u32,
    /// Hex lines (6 CLBs of reach, tapped at 0/3/6).
    pub hex: u32,
    /// Horizontal long lines (span the device's columns).
    pub long_h: u32,
    /// Vertical long lines (span the device's rows).
    pub long_v: u32,
}

impl CostModel {
    /// The cost profile for a `dims`-sized device. Long lines scale with
    /// the span they buy.
    pub const fn for_dims(dims: Dims) -> CostModel {
        CostModel {
            slice_in: 1,
            out: 2,
            single: 4,
            hex: 6,
            long_h: 6 + dims.cols as u32 / 4,
            long_v: 6 + dims.rows as u32 / 4,
        }
    }

    /// Entry cost of `w` under this model.
    #[inline]
    pub fn wire_cost(self, w: Wire) -> u32 {
        match w.kind() {
            WireKind::SliceIn { .. } => self.slice_in,
            WireKind::Out(_) => self.out,
            WireKind::DirectE(_) | WireKind::Feedback(_) => self.out,
            WireKind::Single { .. } => self.single,
            WireKind::Hex { .. } => self.hex,
            WireKind::LongH(_) => self.long_h,
            WireKind::LongV(_) => self.long_v,
            // Never entered via PIPs (sources / aliases are canonicalized).
            _ => self.single,
        }
    }
}

/// Per-device distance-lookahead table: admissible lower bounds on the
/// cost of closing a row/column distance, with and without long lines.
#[derive(Debug)]
pub struct Lookahead {
    dims: Dims,
    model: CostModel,
    /// `row[d]` = min cost to close a row distance of `d` (singles+hexes).
    row: Vec<u32>,
    /// `col[d]` = same for columns (direct-east participates here).
    col: Vec<u32>,
    /// Variants when long lines are allowed (a single long can close any
    /// distance on its axis for one entry cost).
    row_long: Vec<u32>,
    col_long: Vec<u32>,
    /// Delay-space twins of the four tables above: `row_d[d]` = min
    /// *delay* (in [`crate::delay`] cost units) any wire combination
    /// pays to close a row distance of `d`. Built by the same
    /// Bellman-Ford with [`delay_units`] move costs, so timing-driven
    /// weighted A* gets a (distance, delay) estimate pair that is
    /// admissible in both spaces.
    row_d: Vec<u32>,
    col_d: Vec<u32>,
    row_d_long: Vec<u32>,
    col_d_long: Vec<u32>,
}

static TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);
static TABLE_HITS: AtomicU64 = AtomicU64::new(0);

/// `(builds, cache_hits)` of the global lookahead registry since process
/// start. Exposed for telemetry: a healthy run builds once per device
/// geometry and hits thereafter.
pub fn cache_stats() -> (u64, u64) {
    (
        TABLE_BUILDS.load(Ordering::Relaxed),
        TABLE_HITS.load(Ordering::Relaxed),
    )
}

/// Bellman-Ford over distance space: `lb[d]` = min cost to close an
/// axis distance of `d` using moves `(reach, cost)`, where a move may
/// go toward the goal (overshooting past it) or away from it, bounded
/// by the `n`-tile device edge. The graph has `n` nodes and a handful
/// of move classes, so the fixpoint is immediate in practice.
fn axis_table(n: usize, moves: &[(u16, u32)]) -> Vec<u32> {
    let n = n.max(1);
    let mut lb = vec![u32::MAX; n];
    lb[0] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for d in 0..n {
            let cur = lb[d];
            if cur == u32::MAX {
                continue;
            }
            for &(reach, cost) in moves {
                let toward = d.abs_diff(reach as usize);
                let away = d + reach as usize;
                let cand = cur + cost;
                if cand < lb[toward] {
                    lb[toward] = cand;
                    changed = true;
                }
                if away < n && cand < lb[away] {
                    lb[away] = cand;
                    changed = true;
                }
            }
        }
    }
    lb
}

/// One-shot direct-east discount over a repeatable-move column table: a
/// direct wire terminates at a CLB input, so any path uses at most one.
fn with_direct(plain: &[u32], direct: u32) -> Vec<u32> {
    (0..plain.len())
        .map(|d| {
            let toward = direct.saturating_add(plain[d.abs_diff(1)]);
            let away = plain
                .get(d + 1)
                .map_or(u32::MAX, |&c| direct.saturating_add(c));
            plain[d].min(toward).min(away)
        })
        .collect()
}

impl Lookahead {
    fn build(dims: Dims) -> Lookahead {
        let model = CostModel::for_dims(dims);
        let hex_mid = HEX_SPAN / 2;
        // Both axes: singles (reach 1) and hexes (tapped at mid and end).
        let moves = [
            (1u16, model.single),
            (hex_mid, model.hex),
            (HEX_SPAN, model.hex),
        ];
        let row = axis_table(dims.rows as usize, &moves);
        // The column axis additionally has direct-east hops (reach 1,
        // cheap) — apply the one-shot discount over the repeatable-move
        // table instead of a repeatable move.
        let col = with_direct(&axis_table(dims.cols as usize, &moves), model.out);
        // With long lines enabled a single entry can close any distance
        // on its axis, so the bound caps at the long's entry cost.
        let row_long = row.iter().map(|&c| c.min(model.long_v)).collect();
        let col_long = col.iter().map(|&c| c.min(model.long_h)).collect();
        // Delay space: same move set, per-class delay units as costs.
        let single_d = delay_units(wire::single(crate::Dir::North, 0));
        let hex_d = delay_units(wire::hex(crate::Dir::North, 0));
        let direct_d = delay_units(wire::direct_e(0));
        let long_h_d = delay_units(wire::long_h(0));
        let long_v_d = delay_units(wire::long_v(0));
        let moves_d = [(1u16, single_d), (hex_mid, hex_d), (HEX_SPAN, hex_d)];
        let row_d = axis_table(dims.rows as usize, &moves_d);
        let col_d = with_direct(&axis_table(dims.cols as usize, &moves_d), direct_d);
        let row_d_long = row_d.iter().map(|&c| c.min(long_v_d)).collect();
        let col_d_long = col_d.iter().map(|&c| c.min(long_h_d)).collect();
        Lookahead {
            dims,
            model,
            row,
            col,
            row_long,
            col_long,
            row_d,
            col_d,
            row_d_long,
            col_d_long,
        }
    }

    /// The lookahead for a `dims`-sized device, built on first use and
    /// cached for the process lifetime (device geometries are a small
    /// closed set — one per [`crate::Family`]).
    pub fn get(dims: Dims) -> &'static Lookahead {
        static CACHE: OnceLock<Mutex<Vec<&'static Lookahead>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let mut guard = cache.lock().unwrap();
        if let Some(la) = guard.iter().find(|la| la.dims == dims) {
            TABLE_HITS.fetch_add(1, Ordering::Relaxed);
            return la;
        }
        TABLE_BUILDS.fetch_add(1, Ordering::Relaxed);
        let la: &'static Lookahead = Box::leak(Box::new(Lookahead::build(dims)));
        guard.push(la);
        la
    }

    /// The cost model the table lower-bounds.
    #[inline]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// The two axis tables (row, col) for the given space and long-line
    /// setting.
    #[inline]
    fn tables(&self, delay: bool, longs: bool) -> (&[u32], &[u32]) {
        match (delay, longs) {
            (false, false) => (&self.row, &self.col),
            (false, true) => (&self.row_long, &self.col_long),
            (true, false) => (&self.row_d, &self.col_d),
            (true, true) => (&self.row_d_long, &self.col_d_long),
        }
    }

    /// Lower bound on the cost of closing `dr` rows and `dc` columns.
    /// Axis bounds add because every routing wire moves along one axis.
    #[inline]
    pub fn bound(&self, dr: u16, dc: u16, longs: bool) -> u32 {
        let (row, col) = self.tables(false, longs);
        row[dr as usize] + col[dc as usize]
    }

    /// Delay-space twin of [`Lookahead::bound`]: lower bound on the
    /// *delay* (in [`crate::delay`] cost units) of closing `dr` rows and
    /// `dc` columns.
    #[inline]
    pub fn bound_delay(&self, dr: u16, dc: u16, longs: bool) -> u32 {
        let (row, col) = self.tables(true, longs);
        row[dr as usize] + col[dc as usize]
    }

    /// Estimate from `seg` over explicit axis tables: the bound from the
    /// segment's nearest tap (long lines use their every-
    /// [`LONG_ACCESS`] access-point pattern).
    fn est_in(&self, row: &[u32], col: &[u32], seg: Segment, goal: RowCol) -> u32 {
        let at = |rc: RowCol| {
            row[rc.row.abs_diff(goal.row) as usize] + col[rc.col.abs_diff(goal.col) as usize]
        };
        match seg.wire.kind() {
            WireKind::Single { dir, .. } => {
                let far = seg.rc.step(dir, 1, self.dims).unwrap_or(seg.rc);
                at(seg.rc).min(at(far))
            }
            WireKind::Hex { dir, .. } => {
                let mid = seg.rc.step(dir, HEX_SPAN / 2, self.dims).unwrap_or(seg.rc);
                let end = seg.rc.step(dir, HEX_SPAN, self.dims).unwrap_or(seg.rc);
                at(seg.rc).min(at(mid)).min(at(end))
            }
            WireKind::LongH(_) => {
                // Reachable every LONG_ACCESS columns along its row.
                let dr = seg.rc.row.abs_diff(goal.row);
                let dc = (goal.col % LONG_ACCESS).min(LONG_ACCESS - goal.col % LONG_ACCESS);
                row[dr as usize] + col[dc as usize]
            }
            WireKind::LongV(_) => {
                let dc = seg.rc.col.abs_diff(goal.col);
                let dr = (goal.row % LONG_ACCESS).min(LONG_ACCESS - goal.row % LONG_ACCESS);
                row[dr as usize] + col[dc as usize]
            }
            _ => at(seg.rc),
        }
    }

    /// Admissible remaining-cost estimate from `seg` to the goal tile.
    pub fn estimate(&self, seg: Segment, goal: RowCol, longs: bool) -> u32 {
        let (row, col) = self.tables(false, longs);
        self.est_in(row, col, seg, goal)
    }

    /// Admissible remaining-*delay* estimate from `seg` to the goal tile,
    /// in [`crate::delay`] cost units.
    pub fn estimate_delay(&self, seg: Segment, goal: RowCol, longs: bool) -> u32 {
        let (row, col) = self.tables(true, longs);
        self.est_in(row, col, seg, goal)
    }

    /// The (distance-cost, delay) estimate pair in one call — what a
    /// criticality-blended weighted A* needs per expansion.
    #[inline]
    pub fn estimate_pair(&self, seg: Segment, goal: RowCol, longs: bool) -> (u32, u32) {
        (
            self.estimate(seg, goal, longs),
            self.estimate_delay(seg, goal, longs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, Family};

    #[test]
    fn axis_table_matches_hand_derived_bounds() {
        let dims = Device::new(Family::Xcv50).dims(); // 16 x 24
        let la = Lookahead::get(dims);
        // Distance 0 is free; 1 is one single (4); 2 is two singles (8);
        // 3 is one hex mid-tap (6); 4 is hex + single (10); 6 one hex;
        // 12 two hexes.
        for (d, want) in [(0, 0), (1, 4), (2, 8), (3, 6), (4, 10), (6, 6), (12, 12)] {
            assert_eq!(la.bound(d, 0, false), want, "row distance {d}");
        }
        // Columns can use direct-east (cost 2) once for a ±1 remainder.
        assert_eq!(la.bound(0, 1, false), 2);
        assert_eq!(la.bound(0, 2, false), 6); // direct + single, not 2 directs
        assert_eq!(la.bound(0, 4, false), 8); // hex mid-tap + direct-east
                                              // 5 = 6 - 1: hex overshoot + direct remainder beats 5 singles.
        assert_eq!(la.bound(0, 5, false), 8);
    }

    #[test]
    fn long_tables_cap_at_long_entry_cost() {
        let dims = Device::new(Family::Xcv1000).dims(); // 64 x 96
        let la = Lookahead::get(dims);
        let m = CostModel::for_dims(dims);
        assert_eq!(la.bound(dims.rows - 1, 0, true), m.long_v);
        assert_eq!(la.bound(0, dims.cols - 1, true), m.long_h);
        // Without longs the bound keeps growing with distance.
        assert!(la.bound(dims.rows - 1, 0, false) > m.long_v);
        // Long variant is never larger than the plain one.
        for d in 0..dims.rows {
            assert!(la.bound(d, 0, true) <= la.bound(d, 0, false));
        }
    }

    #[test]
    fn bounds_are_monotone_enough_to_be_admissible() {
        // Spot-check admissibility against brute force: the bound for
        // distance d never exceeds d singles (a real path that always
        // exists along one axis inside the device).
        let dims = Device::new(Family::Xcv300).dims();
        let la = Lookahead::get(dims);
        let m = la.model();
        for d in 0..dims.rows {
            assert!(la.bound(d, 0, false) <= d as u32 * m.single);
        }
        for d in 1..dims.cols {
            // One direct-east hop plus singles is always a real path shape.
            assert!(la.bound(0, d, false) <= m.out + (d as u32 - 1) * m.single);
        }
    }

    #[test]
    fn delay_tables_match_hand_derived_bounds() {
        use crate::delay::delay_units;
        use crate::{wire, Dir};
        let dims = Device::new(Family::Xcv50).dims();
        let la = Lookahead::get(dims);
        let s = delay_units(wire::single(Dir::North, 0)); // (120+150)/50 = 5
        let h = delay_units(wire::hex(Dir::North, 0)); // (120+350)/50 = 9
        assert_eq!(la.bound_delay(0, 0, false), 0);
        assert_eq!(la.bound_delay(1, 0, false), s);
        assert_eq!(la.bound_delay(2, 0, false), 2 * s);
        // Distance 3: a hex mid-tap (9) beats three singles (15).
        assert_eq!(la.bound_delay(3, 0, false), h);
        assert_eq!(la.bound_delay(6, 0, false), h);
        // Columns get the one-shot direct-east discount ((120+60)/50 = 3).
        assert_eq!(la.bound_delay(0, 1, false), delay_units(wire::direct_e(0)));
        // Long tables cap at the long's entry delay.
        let big = Device::new(Family::Xcv1000).dims();
        let bl = Lookahead::get(big);
        assert_eq!(
            bl.bound_delay(big.rows - 1, 0, true),
            delay_units(wire::long_v(0))
        );
        assert!(bl.bound_delay(big.rows - 1, 0, false) > delay_units(wire::long_v(0)));
    }

    #[test]
    fn delay_estimates_are_admissible_against_singles() {
        use crate::delay::delay_units;
        use crate::{wire, Dir};
        let dims = Device::new(Family::Xcv300).dims();
        let la = Lookahead::get(dims);
        let s = delay_units(wire::single(Dir::North, 0));
        for d in 0..dims.rows {
            assert!(la.bound_delay(d, 0, false) <= d as u32 * s);
        }
        // The pair accessor agrees with the scalar calls.
        let seg = Segment {
            rc: RowCol::new(3, 4),
            wire: wire::hex(Dir::East, 0),
        };
        let goal = RowCol::new(10, 12);
        assert_eq!(
            la.estimate_pair(seg, goal, false),
            (
                la.estimate(seg, goal, false),
                la.estimate_delay(seg, goal, false)
            )
        );
    }

    #[test]
    fn cache_reuses_tables_per_dims() {
        let a = Lookahead::get(Dims::new(16, 24));
        let b = Lookahead::get(Dims::new(16, 24));
        assert!(std::ptr::eq(a, b));
        let (builds, hits) = cache_stats();
        assert!(builds >= 1);
        assert!(hits >= 1);
    }
}
