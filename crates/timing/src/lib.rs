//! # jroute-timing — delay model, skew analysis and timing-driven routing
//!
//! The paper flags two timing gaps in its initial implementation: the
//! greedy fan-out router *"is not timing driven ... suitable only for
//! non-critical nets"* (§3.1), and *"skew minimization will be
//! addressed"* (§6). This crate supplies the missing pieces for the
//! reproduction's E13 experiment:
//!
//! * [`delay`] — a per-wire-class delay model (Elmore-flavoured, in ps);
//! * [`analysis`] — per-sink arrival times, critical delay and skew of a
//!   routed net, computed from readback;
//! * [`driven`] — a timing-driven fan-out router built on the public
//!   JRoute API, for critical nets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod crit;
pub mod delay;
pub mod driven;

pub use analysis::{analyze_net, NetTiming};
pub use crit::CriticalityTable;
pub use delay::{delay_units, wire_delay_ps, PIP_DELAY_PS, PS_PER_COST};
pub use driven::route_fanout_timing_driven;
