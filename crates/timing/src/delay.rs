//! The wire-delay model (re-exported from [`virtex::delay`]).
//!
//! Paper §3.1, on the greedy fan-out router: *"Because it is not timing
//! driven, this algorithm is suitable only for non-critical nets."* And
//! §6: *"skew minimization will be addressed."* Analysing either claim
//! needs a delay model. The model itself lives in `virtex::delay` so the
//! core maze router can charge delay-aware negotiated costs without
//! depending on this crate; everything here delegates to it and the
//! public API is unchanged.

pub use virtex::delay::{delay_units, ps_to_units, wire_delay_ps, PIP_DELAY_PS, PS_PER_COST};

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Dir};

    #[test]
    fn hexes_beat_singles_per_clb() {
        // Normalised per-CLB delay: hexes cover six CLBs per hop, so
        // their per-CLB delay undercuts singles' — the reason routers
        // prefer them for distance.
        assert!(
            wire_delay_ps(wire::hex(Dir::North, 0)) / u64::from(wire::HEX_SPAN)
                < wire_delay_ps(wire::single(Dir::North, 0)),
            "hex per-CLB delay must undercut singles"
        );
    }

    #[test]
    fn local_resources_are_fastest() {
        let local = wire_delay_ps(wire::feedback(0));
        for w in [
            wire::single(Dir::East, 0),
            wire::hex(Dir::East, 0),
            wire::long_h(0),
        ] {
            assert!(local < wire_delay_ps(w));
        }
    }

    #[test]
    fn aliases_share_the_segment_delay() {
        assert_eq!(
            wire_delay_ps(wire::single(Dir::East, 3)),
            wire_delay_ps(wire::single_end(Dir::East, 3))
        );
        assert_eq!(
            wire_delay_ps(wire::hex(Dir::South, 1)),
            wire_delay_ps(wire::hex_mid(Dir::South, 1))
        );
    }
}
