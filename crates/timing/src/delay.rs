//! The wire-delay model.
//!
//! Paper §3.1, on the greedy fan-out router: *"Because it is not timing
//! driven, this algorithm is suitable only for non-critical nets."* And
//! §6: *"skew minimization will be addressed."* Analysing either claim
//! needs a delay model; this is a simple Elmore-flavoured one with
//! per-class constants in picoseconds, shaped like the published Virtex
//! speed characteristics: each PIP adds switch delay, short wires are
//! fast, long buffered lines have a higher but span-independent cost.

use virtex::{Wire, WireKind};

/// Delay contributed by one PIP (buffer + switch), in picoseconds.
pub const PIP_DELAY_PS: u64 = 120;

/// Delay of travelling the given wire, in picoseconds (excludes the PIP
/// that drives it).
pub fn wire_delay_ps(wire: Wire) -> u64 {
    match wire.kind() {
        // Local resources: fast dedicated paths (paper §2: "high-speed
        // connections bypassing the routing matrix").
        WireKind::DirectE(_) | WireKind::DirectWEnd(_) => 60,
        WireKind::Feedback(_) => 50,
        // OMUX: a mux stage.
        WireKind::Out(_) => 80,
        // General-purpose interconnect.
        WireKind::Single { .. } | WireKind::SingleEnd { .. } => 150,
        WireKind::Hex { .. } | WireKind::HexMid { .. } | WireKind::HexEnd { .. } => 350,
        // Longs are buffered: costly to enter, then span-independent
        // ("distribute the signals across the chip quickly", §2).
        WireKind::LongH(_) | WireKind::LongV(_) => 600,
        // Pin connections.
        WireKind::SliceIn { .. } | WireKind::SliceOut { .. } => 0,
        // Dedicated low-skew global network.
        WireKind::Gclk(_) => 100,
    }
}

/// Delay per CLB of distance, for normalised comparisons: hexes cover six
/// CLBs per hop, so their *per-CLB* delay is lower than singles' — the
/// reason routers prefer them for distance.
pub fn delay_per_clb_ps(wire: Wire) -> u64 {
    match wire.kind() {
        WireKind::Single { .. } | WireKind::SingleEnd { .. } => 150,
        WireKind::Hex { .. } | WireKind::HexMid { .. } | WireKind::HexEnd { .. } => 350 / 6,
        _ => wire_delay_ps(wire),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Dir};

    #[test]
    fn hexes_beat_singles_per_clb() {
        assert!(
            delay_per_clb_ps(wire::hex(Dir::North, 0))
                < delay_per_clb_ps(wire::single(Dir::North, 0)),
            "hex per-CLB delay must undercut singles"
        );
    }

    #[test]
    fn local_resources_are_fastest() {
        let local = wire_delay_ps(wire::feedback(0));
        for w in [
            wire::single(Dir::East, 0),
            wire::hex(Dir::East, 0),
            wire::long_h(0),
        ] {
            assert!(local < wire_delay_ps(w));
        }
    }

    #[test]
    fn aliases_share_the_segment_delay() {
        assert_eq!(
            wire_delay_ps(wire::single(Dir::East, 3)),
            wire_delay_ps(wire::single_end(Dir::East, 3))
        );
        assert_eq!(
            wire_delay_ps(wire::hex(Dir::South, 1)),
            wire_delay_ps(wire::hex_mid(Dir::South, 1))
        );
    }
}
