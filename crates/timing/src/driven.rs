//! A timing-driven fan-out router.
//!
//! The paper concedes its greedy fan-out router *"is not timing driven
//! [and] is suitable only for non-critical nets. For critical nets,
//! however, the user would need to specify the routes at a lower level"*
//! (§3.1). This module closes that gap one level up: instead of forcing
//! users down to manual paths, it grows the net as a timing-driven tree —
//! each sink routed against the existing tree with segments offered at
//! their accumulated arrival delay and new wires costed by the delay
//! model — so critical nets get minimum-arrival branches.
//!
//! Built entirely on the public `jroute` API plus the maze engine: the
//! committed PIPs go through `Router::route_pip`, so all contention
//! protection and net bookkeeping apply unchanged.

use crate::analysis::segment_arrivals;
use crate::delay::ps_to_units;
use jroute::maze::{self, MazeConfig, MazeScratch, CRIT_ONE};
use jroute::{EndPoint, Result, RouteError, Router};
use virtex::Segment;

/// Route `source` to every sink minimizing per-sink *arrival time*.
///
/// Classic timing-driven tree growth: each sink is routed by a search
/// whose start set is the existing tree, with each tree segment offered
/// at its accumulated arrival delay (not zero, as the greedy
/// resource-minimizing router does) and each new segment costed by the
/// delay model. Grafting near the source is therefore preferred for
/// critical sinks even when deeper reuse would save wire.
///
/// Returns the number of PIPs configured. Compare with
/// [`jroute::Router::route_fanout`] (greedy, resource-minimizing) in
/// experiment E13.
pub fn route_fanout_timing_driven(
    router: &mut Router,
    source: &EndPoint,
    sinks: &[EndPoint],
) -> Result<usize> {
    let dev = *router.device();
    let src = router.resolve(source)?[0];
    let src_seg = dev
        .canonicalize(src.rc, src.wire)
        .ok_or(RouteError::NoSuchWire {
            rc: src.rc,
            wire: src.wire,
        })?;
    let mut scratch = MazeScratch::new(&dev);
    // `crit = CRIT_ONE` puts the shared maze cost blend at the pure-delay
    // endpoint: every expansion is charged `delay_units(wire)` and the
    // lookahead switches to its delay tables — the same cost the
    // criticality-driven PathFinder converges to for its most critical
    // sinks, so this router and `pathfinder` price wires identically.
    let cfg = MazeConfig {
        use_long_lines: router.options().use_long_lines,
        crit: CRIT_ONE,
        // Exact A*: critical nets are worth the extra expansions, and at
        // weight 1 each leg is provably minimum-arrival (the delay
        // lookahead is admissible).
        heuristic_weight: 1,
        ..Default::default()
    };
    let mut pips_configured = 0usize;

    // Resolve all sink pins first and route the most critical (farthest)
    // first, so the timing-driven tree forms around the worst path.
    let mut pins = Vec::new();
    for ep in sinks {
        pins.extend(router.resolve(ep)?);
    }
    pins.sort_by_key(|p| std::cmp::Reverse(p.rc.manhattan(src.rc)));

    for pin in pins {
        let goal = dev
            .canonicalize(pin.rc, pin.wire)
            .ok_or(RouteError::NoSuchWire {
                rc: pin.rc,
                wire: pin.wire,
            })?;
        // The sink itself must be free (the maze never blocks its goal).
        if router.nets().owner(goal).is_some() || router.bits().is_segment_driven(goal) {
            return Err(RouteError::ResourceInUse {
                segment: goal,
                owner: router.nets().owner(goal),
            });
        }
        // The existing tree, offered at its true arrival delays.
        let arrivals = segment_arrivals(router.bits(), src_seg);
        let starts: Vec<(Segment, u32)> = arrivals
            .iter()
            .map(|(&seg, &ps)| (seg, ps_to_units(ps)))
            .collect();
        let result = {
            let nets = router.nets();
            let bits = router.bits();
            maze::search(
                &dev,
                &starts,
                goal,
                &cfg,
                |seg: Segment| {
                    // Any driven or claimed wire cannot take a second
                    // driving PIP (§3.4); tree reuse happens through the
                    // start set, never by re-entering.
                    nets.is_used(seg) || bits.is_segment_driven(seg)
                },
                // At `crit = CRIT_ONE` the maze already charges
                // `delay_units(wire)` per expansion; no congestion term.
                |_: Segment| 0,
                &mut scratch,
            )
        }
        .ok_or(RouteError::Unroutable {
            from: src_seg,
            to: goal,
        })?;
        for (rc, pip) in &result.pips {
            router.route_pip(*rc, pip.from, pip.to)?;
            pips_configured += 1;
        }
    }
    Ok(pips_configured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_net;
    use jroute::Pin;
    use virtex::{wire, Device, Family, RowCol};

    #[test]
    fn timing_driven_routes_all_sinks_with_independent_branches() {
        let dev = Device::new(Family::Xcv300);
        let mut r = Router::new(&dev);
        let src: EndPoint = Pin::new(10, 10, wire::S0_YQ).into();
        let sinks: Vec<EndPoint> = vec![
            Pin::new(10, 18, wire::S0_F3).into(),
            Pin::new(16, 10, wire::S1_F1).into(),
            Pin::new(14, 16, wire::slice_in(0, 1)).into(),
        ];
        let n = route_fanout_timing_driven(&mut r, &src, &sinks).unwrap();
        assert!(n > 0);
        let seg = dev.canonicalize(RowCol::new(10, 10), wire::S0_YQ).unwrap();
        let t = analyze_net(r.bits(), seg);
        assert_eq!(t.fanout(), 3);
    }

    #[test]
    fn timing_driven_never_exceeds_greedy_max_delay() {
        // The paper's claim inverted: the timing-driven variant must be
        // at least as good on critical-path delay as the greedy
        // resource-sharing one.
        let dev = Device::new(Family::Xcv300);
        let src_pin = Pin::new(8, 8, wire::S0_YQ);
        let sink_pins = [
            Pin::new(8, 20, wire::S0_F3),
            Pin::new(20, 8, wire::S1_F1),
            Pin::new(18, 18, wire::slice_in(0, 1)),
        ];
        let sinks: Vec<EndPoint> = sink_pins.iter().map(|&p| p.into()).collect();

        let mut greedy = Router::new(&dev);
        greedy.route_fanout(&src_pin.into(), &sinks).unwrap();
        let g = analyze_net(
            greedy.bits(),
            dev.canonicalize(src_pin.rc, src_pin.wire).unwrap(),
        );

        let mut driven = Router::new(&dev);
        route_fanout_timing_driven(&mut driven, &src_pin.into(), &sinks).unwrap();
        let d = analyze_net(
            driven.bits(),
            dev.canonicalize(src_pin.rc, src_pin.wire).unwrap(),
        );

        assert_eq!(g.fanout(), 3);
        assert_eq!(d.fanout(), 3);
        assert!(
            d.max_delay() <= g.max_delay(),
            "timing-driven {}ps vs greedy {}ps",
            d.max_delay(),
            g.max_delay()
        );
    }

    #[test]
    fn contention_protection_applies() {
        // A sink already owned by another net is refused, not stolen.
        let dev = Device::new(Family::Xcv300);
        let mut r = Router::new(&dev);
        let other_src: EndPoint = Pin::new(4, 4, wire::S1_YQ).into();
        let contested: EndPoint = Pin::new(6, 6, wire::S0_F3).into();
        r.route(&other_src, &contested).unwrap();
        let src: EndPoint = Pin::new(8, 8, wire::S0_YQ).into();
        let err = route_fanout_timing_driven(&mut r, &src, &[contested]).unwrap_err();
        assert!(matches!(
            err,
            RouteError::Unroutable { .. } | RouteError::ResourceInUse { .. }
        ));
    }
}
