//! Net timing analysis over a configured bitstream.
//!
//! Walks a net from its source through the on-PIPs (readback-based, like
//! `jroute::trace`) accumulating the delay model, and reports per-sink
//! arrival times, the critical (max) delay and the skew (max − min) —
//! the §6 "skew minimization" metric.

use crate::delay::{wire_delay_ps, PIP_DELAY_PS};
use jbits::Bitstream;
use jroute::Pin;
use std::collections::HashMap;
use virtex::segment::Tap;
use virtex::Segment;

/// Per-sink arrival times of one net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetTiming {
    /// `(sink pin, arrival delay in ps)` in discovery order.
    pub sink_delays: Vec<(Pin, u64)>,
}

impl NetTiming {
    /// Critical-path (maximum) sink delay.
    pub fn max_delay(&self) -> u64 {
        self.sink_delays.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Fastest sink delay.
    pub fn min_delay(&self) -> u64 {
        self.sink_delays.iter().map(|&(_, d)| d).min().unwrap_or(0)
    }

    /// Skew: spread between fastest and slowest sink.
    pub fn skew(&self) -> u64 {
        self.max_delay() - self.min_delay()
    }

    /// Number of sinks reached.
    pub fn fanout(&self) -> usize {
        self.sink_delays.len()
    }
}

/// Arrival time of every *segment* of the net driven by `source`
/// (earliest arrival under the delay model). The source maps to 0.
///
/// This is the substrate of timing-driven tree extension: a new branch
/// grafted at segment `s` starts with delay `arrivals[s]`.
pub fn segment_arrivals(bits: &Bitstream, source: Segment) -> HashMap<Segment, u64> {
    let dev = bits.device();
    let mut arrival: HashMap<Segment, u64> = HashMap::new();
    arrival.insert(source, 0);
    let mut frontier = vec![source];
    let mut taps: Vec<Tap> = Vec::new();
    while let Some(seg) = frontier.pop() {
        let at = arrival[&seg];
        taps.clear();
        virtex::segment::taps(dev.dims(), seg, &mut taps);
        for tap in &taps {
            for pip in bits.pips_at(tap.rc) {
                if pip.from != tap.wire || pip.to.is_clb_input() {
                    continue;
                }
                let Some(next) = dev.canonicalize(tap.rc, pip.to) else {
                    continue;
                };
                let t = at + PIP_DELAY_PS + wire_delay_ps(next.wire);
                let entry = arrival.entry(next).or_insert(u64::MAX);
                if *entry > t {
                    *entry = t;
                    frontier.push(next);
                }
            }
        }
    }
    arrival
}

/// Analyse the net driven by `source`: arrival time of every reached
/// sink under the delay model.
///
/// Arrival at a segment is the arrival at its driver plus one PIP delay
/// plus the segment's wire delay; fan-out branches accumulate
/// independently. If reconvergence were configured (it cannot be under
/// the single-driver invariant) the earliest arrival would win.
pub fn analyze_net(bits: &Bitstream, source: Segment) -> NetTiming {
    let dev = bits.device();
    let mut arrival: HashMap<Segment, u64> = HashMap::new();
    arrival.insert(source, 0);
    let mut frontier = vec![source];
    let mut sink_delays = Vec::new();
    let mut taps: Vec<Tap> = Vec::new();
    while let Some(seg) = frontier.pop() {
        let at = arrival[&seg];
        taps.clear();
        virtex::segment::taps(dev.dims(), seg, &mut taps);
        for tap in &taps {
            for pip in bits.pips_at(tap.rc) {
                if pip.from != tap.wire {
                    continue;
                }
                let Some(next) = dev.canonicalize(tap.rc, pip.to) else {
                    continue;
                };
                let t = at + PIP_DELAY_PS + wire_delay_ps(next.wire);
                if pip.to.is_clb_input() {
                    sink_delays.push((Pin::at(tap.rc, pip.to), t));
                    continue;
                }
                let entry = arrival.entry(next).or_insert(u64::MAX);
                if *entry > t {
                    *entry = t;
                    frontier.push(next);
                }
            }
        }
    }
    NetTiming { sink_delays }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Dir, Family, RowCol};

    fn example() -> (Bitstream, Segment) {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
            .unwrap();
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        b.set_pip(
            RowCol::new(5, 8),
            wire::single_end(Dir::East, 5),
            wire::single(Dir::North, 0),
        )
        .unwrap();
        b.set_pip(
            RowCol::new(6, 8),
            wire::single_end(Dir::North, 0),
            wire::S0_F3,
        )
        .unwrap();
        let src = dev.canonicalize(RowCol::new(5, 7), wire::S1_YQ).unwrap();
        (b, src)
    }

    #[test]
    fn single_sink_delay_sums_the_path() {
        let (b, src) = example();
        let t = analyze_net(&b, src);
        assert_eq!(t.fanout(), 1);
        // S1_YQ -> OUT (pip+80) -> single (pip+150) -> single (pip+150)
        // -> pin (pip+0).
        let expect = (120 + 80) + (120 + 150) + (120 + 150) + 120;
        assert_eq!(t.max_delay(), expect);
        assert_eq!(t.skew(), 0, "one sink has no skew");
    }

    #[test]
    fn fanout_branches_have_independent_arrivals() {
        let (mut b, src) = example();
        // Short branch: OUT[1] also drives SINGLE_N[3] to a local pin.
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::North, 3))
            .unwrap();
        b.set_pip(
            RowCol::new(6, 7),
            wire::single_end(Dir::North, 3),
            wire::slice_in(1, 8),
        )
        .unwrap();
        let t = analyze_net(&b, src);
        assert_eq!(t.fanout(), 2);
        assert!(t.skew() > 0, "branches of different length must skew");
        assert!(t.min_delay() < t.max_delay());
    }

    #[test]
    fn unrouted_source_has_no_sinks() {
        let dev = Device::new(Family::Xcv50);
        let b = Bitstream::new(&dev);
        let src = dev.canonicalize(RowCol::new(3, 3), wire::S0_YQ).unwrap();
        let t = analyze_net(&b, src);
        assert_eq!(t.fanout(), 0);
        assert_eq!(t.max_delay(), 0);
    }
}
