//! Per-sink criticality over analysed net timings.
//!
//! RWRoute-style criticality: each sink's share of the design's critical
//! path, `crit = (arrival / critical_delay) ^ exp`, sharpened by the
//! exponent so near-critical sinks dominate and short nets fade to the
//! congestion-only cost. The table is dense per net, mirrors the
//! incremental table `jroute::pathfinder` keeps internally during
//! negotiation, and reports in the same [`CRIT_ONE`] fixed-point units
//! [`jroute::maze::MazeConfig::crit`] consumes — so a post-route
//! analysis pass can feed selective re-routing of the worst nets
//! without a unit conversion.
//!
//! [`CRIT_ONE`]: jroute::maze::CRIT_ONE

use crate::analysis::NetTiming;
use jroute::maze::CRIT_ONE;

/// Dense per-net, per-sink criticality table built from
/// [`NetTiming`](crate::analysis::NetTiming) results.
///
/// ```
/// use jroute_timing::{analyze_net, CriticalityTable};
/// use jroute::maze::CRIT_ONE;
/// # use jbits::Bitstream;
/// # use virtex::{wire, Device, Family, RowCol};
/// # let dev = Device::new(Family::Xcv50);
/// # let mut b = Bitstream::new(&dev);
/// # b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1)).unwrap();
/// # b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(virtex::Dir::East, 5)).unwrap();
/// # b.set_pip(RowCol::new(5, 8), wire::single_end(virtex::Dir::East, 5), wire::single(virtex::Dir::North, 0)).unwrap();
/// # b.set_pip(RowCol::new(6, 8), wire::single_end(virtex::Dir::North, 0), wire::S0_F3).unwrap();
/// # let src = dev.canonicalize(RowCol::new(5, 7), wire::S1_YQ).unwrap();
/// let mut table = CriticalityTable::new(2.0);
/// table.set_net(0, &analyze_net(&b, src));
/// // The critical sink of the critical net sits at the fixed-point top.
/// assert_eq!(table.crit(0, 0), CRIT_ONE);
/// ```
#[derive(Debug, Clone)]
pub struct CriticalityTable {
    exp: f32,
    /// Per-net arrival times in ps, sink order as discovered by
    /// [`analyze_net`](crate::analysis::analyze_net).
    delays: Vec<Vec<u64>>,
}

impl CriticalityTable {
    /// New empty table with the given sharpening exponent (RWRoute uses
    /// values in `[1, 3]`; the PathFinder default is `2.0`).
    pub fn new(exp: f32) -> Self {
        Self {
            exp,
            delays: Vec::new(),
        }
    }

    /// The sharpening exponent.
    pub fn exponent(&self) -> f32 {
        self.exp
    }

    /// Record (or refresh) one net's analysed timing. The table grows
    /// densely: setting net 7 first materialises empty rows 0–6.
    pub fn set_net(&mut self, net: usize, timing: &NetTiming) {
        if self.delays.len() <= net {
            self.delays.resize(net + 1, Vec::new());
        }
        self.delays[net] = timing.sink_delays.iter().map(|&(_, d)| d).collect();
    }

    /// The design's critical (maximum) sink delay across every recorded
    /// net, in ps. Zero when the table is empty.
    pub fn critical_delay(&self) -> u64 {
        self.delays.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Criticality of one sink in [`CRIT_ONE`] fixed-point units —
    /// directly usable as [`jroute::maze::MazeConfig::crit`]. Unknown
    /// nets/sinks (or an empty table) read as zero.
    pub fn crit(&self, net: usize, sink: usize) -> u32 {
        let critical = self.critical_delay();
        if critical == 0 {
            return 0;
        }
        let Some(&d) = self.delays.get(net).and_then(|row| row.get(sink)) else {
            return 0;
        };
        let frac = d as f64 / critical as f64;
        ((frac.powf(self.exp as f64) * CRIT_ONE as f64) as u32).min(CRIT_ONE)
    }

    /// All criticalities of one net, sink order preserved.
    pub fn crits(&self, net: usize) -> Vec<u32> {
        let n = self.delays.get(net).map_or(0, Vec::len);
        (0..n).map(|s| self.crit(net, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jroute::Pin;
    use virtex::{wire, RowCol};

    fn timing(delays: &[u64]) -> NetTiming {
        NetTiming {
            sink_delays: delays
                .iter()
                .map(|&d| (Pin::at(RowCol::new(1, 1), wire::slice_in(0, 1)), d))
                .collect(),
        }
    }

    #[test]
    fn critical_sink_reads_full_scale_and_others_fall_off() {
        let mut t = CriticalityTable::new(2.0);
        t.set_net(0, &timing(&[1000, 500]));
        t.set_net(1, &timing(&[2000]));
        assert_eq!(t.critical_delay(), 2000);
        assert_eq!(t.crit(1, 0), CRIT_ONE);
        // (1000/2000)^2 = 0.25; (500/2000)^2 = 0.0625.
        assert_eq!(t.crit(0, 0), CRIT_ONE / 4);
        assert_eq!(t.crit(0, 1), CRIT_ONE / 16);
    }

    #[test]
    fn higher_exponent_sharpens_the_falloff() {
        let mut quad = CriticalityTable::new(2.0);
        let mut cube = CriticalityTable::new(3.0);
        for t in [&mut quad, &mut cube] {
            t.set_net(0, &timing(&[600, 1000]));
        }
        assert!(cube.crit(0, 0) < quad.crit(0, 0));
        assert_eq!(cube.crit(0, 1), quad.crit(0, 1), "critical sink pinned");
    }

    #[test]
    fn unknown_rows_and_empty_tables_read_zero() {
        let mut t = CriticalityTable::new(2.0);
        assert_eq!(t.crit(3, 9), 0);
        assert_eq!(t.critical_delay(), 0);
        t.set_net(2, &timing(&[100]));
        assert_eq!(t.crits(0), Vec::<u32>::new(), "dense gap row is empty");
        assert_eq!(t.crits(2), vec![CRIT_ONE]);
    }
}
