//! # jroute-tests — the workspace-level test and example host
//!
//! The root `Cargo.toml` is a virtual workspace, so the repo-root
//! `tests/` and `examples/` directories need a package to own them; this
//! crate's manifest declares each of those files as an explicit
//! `[[test]]` / `[[example]]` target. The library itself carries only
//! shared constants so the package has a buildable root target.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Standard base seed for test RNGs, matching `jroute_bench::SEED`
/// ("JROUTE" in ASCII) so tests and benches draw from related streams.
pub const SEED: u64 = 0x4A52_4F55_5445;
