//! # harness — in-repo test and benchmark infrastructure
//!
//! Two small drivers that keep the workspace hermetic (no registry
//! crates):
//!
//! * [`prop`] — a seeded property-test loop replacing `proptest`: each
//!   case gets a fresh [`detrand::DetRng`]; on failure the case's seed is
//!   printed so it can be replayed with `HARNESS_SEED=<seed>
//!   HARNESS_CASES=1`.
//! * [`bench`] — a warmup + median-of-N microbench timer replacing
//!   `criterion`, with the same call shape (`bench_group!`,
//!   `bench_main!`, `Bench`, `Bencher`, `BatchSize`) and machine-readable
//!   `BENCH_<name>.json` output under `target/bench-json/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod prop;

pub use bench::{BatchSize, Bench, BenchGroup, Bencher};
pub use prop::{check, check_with};
