//! Minimal microbenchmark timer.
//!
//! The call shape mirrors the slice of `criterion` the bench suite used —
//! [`Bench`] for `Criterion`, [`bench_group!`](crate::bench_group) /
//! [`bench_main!`](crate::bench_main) for `criterion_group!` /
//! `criterion_main!`, [`Bencher::iter`] and [`Bencher::iter_batched`] —
//! but the measurement model is deliberately simple: after a warmup
//! period sizes the per-sample iteration count, each benchmark takes
//! `sample_size` wall-clock samples and reports min / median / mean / max
//! nanoseconds per iteration. Results are printed as a table and written
//! as `BENCH_<target>.json` (see [`write_report`]).
//!
//! Environment knobs (all optional; they override the configured values,
//! which lets `scripts/verify.sh` smoke-run a bench in milliseconds):
//!
//! * `BENCH_SAMPLE_SIZE` — samples per benchmark.
//! * `BENCH_MEASURE_MS` — total measurement budget per benchmark.
//! * `BENCH_WARMUP_MS` — warmup budget per benchmark.
//! * `BENCH_JSON_DIR` — output directory (default `target/bench-json`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` treats its setup output. All variants currently
/// run setup once per timed call (setup cost is excluded from timing
/// either way); the variant is kept so call sites read like the
/// criterion originals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs; batching freely.
    SmallInput,
    /// Large inputs; batch conservatively.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Timing record for one benchmark id.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark id, e.g. `e1/pips_from_full_tile`.
    pub id: String,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
    /// Nanoseconds per iteration, one entry per sample.
    pub samples_ns: Vec<f64>,
}

impl Record {
    fn sorted(&self) -> Vec<f64> {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s
    }

    /// Minimum ns/iter over the samples.
    pub fn min_ns(&self) -> f64 {
        self.sorted().first().copied().unwrap_or(0.0)
    }

    /// Median ns/iter over the samples.
    pub fn median_ns(&self) -> f64 {
        let s = self.sorted();
        if s.is_empty() {
            return 0.0;
        }
        let mid = s.len() / 2;
        if s.len().is_multiple_of(2) {
            (s[mid - 1] + s[mid]) / 2.0
        } else {
            s[mid]
        }
    }

    /// Mean ns/iter over the samples.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Maximum ns/iter over the samples.
    pub fn max_ns(&self) -> f64 {
        self.sorted().last().copied().unwrap_or(0.0)
    }
}

/// Human-friendly duration from nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok())
}

/// The benchmark driver: configuration plus collected results.
#[derive(Debug)]
pub struct Bench {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    records: Vec<Record>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            sample_size: 10,
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(500),
            records: Vec::new(),
        }
    }
}

impl Bench {
    /// Samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warmup budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    fn effective(&self) -> (usize, Duration, Duration) {
        (
            env_u64("BENCH_SAMPLE_SIZE")
                .map(|n| n.max(1) as usize)
                .unwrap_or(self.sample_size),
            env_u64("BENCH_MEASURE_MS")
                .map(Duration::from_millis)
                .unwrap_or(self.measurement),
            env_u64("BENCH_WARMUP_MS")
                .map(Duration::from_millis)
                .unwrap_or(self.warm_up),
        )
    }

    /// Run one benchmark and record its timings.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let (sample_size, measurement, warm_up) = self.effective();
        let mut b = Bencher {
            sample_size,
            measurement,
            warm_up,
            iters_per_sample: 0,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let rec = Record {
            id: id.clone(),
            iters_per_sample: b.iters_per_sample,
            samples_ns: b.samples_ns,
        };
        eprintln!(
            "bench {:<40} median {:>12}  (min {}, mean {}, max {}, {} x {} iters)",
            rec.id,
            fmt_ns(rec.median_ns()),
            fmt_ns(rec.min_ns()),
            fmt_ns(rec.mean_ns()),
            fmt_ns(rec.max_ns()),
            rec.samples_ns.len(),
            rec.iters_per_sample,
        );
        self.records.push(rec);
        self
    }

    /// A group whose benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            bench: self,
            prefix: name.into(),
        }
    }

    /// Collected records, in run order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }
}

/// A named prefix over a [`Bench`] (criterion's `BenchmarkGroup`).
pub struct BenchGroup<'a> {
    bench: &'a mut Bench,
    prefix: String,
}

impl BenchGroup<'_> {
    /// Run one benchmark under this group's prefix.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.prefix, id.into());
        self.bench.bench_function(id, f);
        self
    }

    /// End the group. (Kept for criterion call-shape compatibility.)
    pub fn finish(self) {}
}

/// Times a single benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    iters_per_sample: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Pick an iteration count so one sample consumes roughly
    /// `measurement / sample_size`, given an estimated per-iter cost.
    fn size_sample(&mut self, est_ns_per_iter: f64) -> u64 {
        let budget = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = (budget / est_ns_per_iter.max(1.0)).floor() as u64;
        self.iters_per_sample = iters.max(1);
        self.iters_per_sample
    }

    /// Time `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget is spent (at least once)
        // and use it to estimate the per-iteration cost.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if t0.elapsed() >= self.warm_up {
                break;
            }
        }
        let est = t0.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = self.size_sample(est);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Size samples by *wall* cost (setup + routine): a cheap routine
        // behind an expensive setup would otherwise fold thousands of
        // setup calls into each sample and overrun the measurement
        // budget by orders of magnitude. The reported ns/iter stays
        // routine-only.
        let wall = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = self.size_sample(wall);
        for _ in 0..self.sample_size {
            let mut ns = 0u128;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                ns += t.elapsed().as_nanos();
            }
            self.samples_ns.push(ns as f64 / iters as f64);
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Print the final table and write `BENCH_<target>.json` with every
/// record from `groups`, into `$BENCH_JSON_DIR` (default
/// `target/bench-json/`). Returns the path written.
pub fn write_report(target: &str, groups: &[Bench]) -> std::path::PathBuf {
    let dir = std::env::var("BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            // cargo runs bench binaries with cwd = the package dir; walk up
            // to the outermost Cargo.toml (the workspace root) so reports
            // land in the shared target/ directory.
            if let Ok(t) = std::env::var("CARGO_TARGET_DIR") {
                return std::path::PathBuf::from(t).join("bench-json");
            }
            let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
            let root = cwd
                .ancestors()
                .filter(|a| a.join("Cargo.toml").exists())
                .last()
                .unwrap_or(&cwd)
                .to_path_buf();
            root.join("target").join("bench-json")
        });
    std::fs::create_dir_all(&dir).expect("create bench-json dir");
    let path = dir.join(format!("BENCH_{target}.json"));

    let mut entries = Vec::new();
    for g in groups {
        for r in g.records() {
            entries.push(format!(
                "    {{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
                 \"ns_per_iter\": {{\"min\": {:.1}, \"median\": {:.1}, \"mean\": {:.1}, \"max\": {:.1}}}}}",
                json_escape(&r.id),
                r.samples_ns.len(),
                r.iters_per_sample,
                r.min_ns(),
                r.median_ns(),
                r.mean_ns(),
                r.max_ns(),
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_escape(target),
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write bench json");
    eprintln!("bench report: {}", path.display());
    path
}

/// Define a benchmark group function, mirroring `criterion_group!`:
///
/// ```ignore
/// harness::bench_group! {
///     name = benches;
///     config = harness::Bench::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! bench_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Bench {
            let mut c = $config;
            $( $target(&mut c); )+
            c
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::bench_group! {
            name = $name;
            config = $crate::Bench::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a bench binary, mirroring `criterion_main!`: runs
/// every group and writes the JSON report named after the bench target.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes flags like `--bench` to the binary; none are
            // needed by this harness, so they are ignored.
            let groups = vec![$($group()),+];
            $crate::bench::write_report(env!("CARGO_CRATE_NAME"), &groups);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Bench {
        Bench::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn iter_collects_requested_samples() {
        let mut c = quick();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let r = &c.records()[0];
        assert_eq!(r.id, "spin");
        assert_eq!(r.samples_ns.len(), 3);
        assert!(r.iters_per_sample >= 1);
        assert!(r.median_ns() > 0.0);
        assert!(r.min_ns() <= r.median_ns() && r.median_ns() <= r.max_ns());
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        assert_eq!(c.records()[0].samples_ns.len(), 3);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = quick();
        let mut g = c.benchmark_group("e0");
        g.bench_function("noop", |b| b.iter(|| 1u32));
        g.finish();
        assert_eq!(c.records()[0].id, "e0/noop");
    }

    #[test]
    fn report_is_written_and_parseable_shape() {
        let mut c = quick();
        c.bench_function("r", |b| b.iter(|| 2u32));
        let dir = std::env::temp_dir().join("harness-bench-test");
        std::env::set_var("BENCH_JSON_DIR", &dir);
        let path = write_report("unit_test", &[c]);
        std::env::remove_var("BENCH_JSON_DIR");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"bench\": \"unit_test\""));
        assert!(body.contains("\"id\": \"r\""));
        assert!(body.contains("\"median\""));
    }
}
