//! Seeded property-test driver.
//!
//! A property is a closure over a [`DetRng`]; the driver runs it for a
//! number of independently seeded cases and, when a case panics, reports
//! the seed that reproduces it before propagating the panic. Ordinary
//! `assert!`/`assert_eq!` macros are the assertion language.
//!
//! Environment knobs:
//!
//! * `HARNESS_CASES` — cases per property (default
//!   [`DEFAULT_CASES`]).
//! * `HARNESS_SEED` — base seed; case `i` runs with `base + i`, so
//!   replaying a reported failing seed is `HARNESS_SEED=<seed>
//!   HARNESS_CASES=1`.

use detrand::DetRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Cases per property when `HARNESS_CASES` is unset. Matches the case
/// count the old proptest suite used, keeping `cargo test` runtime flat.
pub const DEFAULT_CASES: u64 = 24;

/// Base seed when `HARNESS_SEED` is unset ("JROUTE" in ASCII).
pub const DEFAULT_SEED: u64 = 0x4A52_4F55_5445;

fn env_u64(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{var} must be an unsigned integer, got {v:?}")),
        Err(_) => default,
    }
}

/// Run `property` for the configured number of cases (see module docs).
///
/// The closure may `return` early to skip a case (the moral equivalent of
/// `prop_assume!`), but should draw replacement values instead where
/// possible so every case tests something.
pub fn check<F: FnMut(&mut DetRng)>(name: &str, property: F) {
    check_with(name, env_u64("HARNESS_CASES", DEFAULT_CASES), property)
}

/// [`check`] with an explicit case count (the explicit count wins over
/// `HARNESS_CASES`); use it for properties whose cases are unusually
/// cheap or expensive.
pub fn check_with<F: FnMut(&mut DetRng)>(name: &str, cases: u64, mut property: F) {
    let base = env_u64("HARNESS_SEED", DEFAULT_SEED);
    for case in 0..cases.max(1) {
        let seed = base.wrapping_add(case);
        let mut rng = DetRng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "[harness] property '{name}' FAILED on case {case} of {cases} (seed {seed})\n\
                 [harness] replay with: HARNESS_SEED={seed} HARNESS_CASES=1"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        check_with("counts_cases", 17, |_| ran += 1);
        assert_eq!(ran, 17);
    }

    #[test]
    fn cases_get_distinct_seeds() {
        let mut firsts = Vec::new();
        check_with("distinct_streams", 8, |rng| firsts.push(rng.next_u64()));
        let uniq: std::collections::HashSet<_> = firsts.iter().collect();
        assert_eq!(uniq.len(), firsts.len(), "case streams must differ");
    }

    #[test]
    fn failing_property_propagates_panic() {
        let result = std::panic::catch_unwind(|| {
            check_with("always_fails", 4, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
