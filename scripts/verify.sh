#!/usr/bin/env bash
# Tier-1 verification entry point (see ROADMAP.md).
#
# The workspace is hermetic: every dependency is an in-repo path crate,
# so everything here must succeed with networking disabled. The script
# builds release, runs the full test suite (unit + the workspace-level
# integration/property/RTR suites hosted by crates/tests), then
# smoke-runs one microbench (emitting machine-readable JSON under
# target/bench-json/) and one example.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> bench smoke: e1_census (tiny budgets via BENCH_* env)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 \
    cargo bench --offline --bench e1_census
test -s target/bench-json/BENCH_e1_census.json
echo "    wrote target/bench-json/BENCH_e1_census.json"

echo "==> example smoke: quickstart"
cargo run --release --offline --example quickstart

echo "verify: OK"
