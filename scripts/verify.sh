#!/usr/bin/env bash
# Tier-1 verification entry point (see ROADMAP.md).
#
# The workspace is hermetic: every dependency is an in-repo path crate,
# so everything here must succeed with networking disabled. The script
# builds release, runs the full test suite (unit + the workspace-level
# integration/property/RTR suites hosted by crates/tests), then
# smoke-runs one microbench (emitting machine-readable JSON under
# target/bench-json/) and one example.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> bench smoke: e1_census (tiny budgets via BENCH_* env)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 \
    cargo bench --offline --bench e1_census
test -s target/bench-json/BENCH_e1_census.json
echo "    wrote target/bench-json/BENCH_e1_census.json"

echo "==> bench smoke: e15_convergence (incremental vs full-ripup PathFinder)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 \
    cargo bench --offline --bench e15_convergence
test -s target/bench-json/BENCH_e15_convergence.json
grep -q '"id": "e15/incremental_' target/bench-json/BENCH_e15_convergence.json
grep -q '"id": "e15/full_ripup_' target/bench-json/BENCH_e15_convergence.json
echo "    wrote target/bench-json/BENCH_e15_convergence.json"

echo "==> bench smoke: e18_partition (partition-parallel negotiation on SUPER4)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 JROUTE_THREADS=1,2 \
    cargo bench --offline --bench e18_partition
test -s target/bench-json/BENCH_e18_partition.json
grep -q '"id": "e18/negotiate_super4_' target/bench-json/BENCH_e18_partition.json
echo "    wrote target/bench-json/BENCH_e18_partition.json"

echo "==> bench smoke: e16_scenarios (trace replay + tuned-vs-static adversarial)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 \
    cargo bench --offline --bench e16_scenarios
test -s target/bench-json/BENCH_e16_scenarios.json
grep -q '"id": "e16/static_' target/bench-json/BENCH_e16_scenarios.json
grep -q '"id": "e16/tuned_' target/bench-json/BENCH_e16_scenarios.json
grep -q '"id": "e16/replay_churn_' target/bench-json/BENCH_e16_scenarios.json
echo "    wrote target/bench-json/BENCH_e16_scenarios.json"

echo "==> bench smoke: e19_server (multi-tenant server throughput/latency)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 JROUTE_THREADS=1,2 \
    cargo bench --offline --bench e19_server
test -s target/bench-json/BENCH_e19_server.json
grep -q '"id": "e19/serve_1ten_' target/bench-json/BENCH_e19_server.json
grep -q '"id": "e19/serve_4ten_' target/bench-json/BENCH_e19_server.json
echo "    wrote target/bench-json/BENCH_e19_server.json"

echo "==> bench smoke: e20_timing_driven (criticality-driven negotiation + Steiner fan-out)"
BENCH_SAMPLE_SIZE=3 BENCH_MEASURE_MS=200 BENCH_WARMUP_MS=50 JROUTE_THREADS=1,2 \
    cargo bench --offline --bench e20_timing_driven
test -s target/bench-json/BENCH_e20_timing_driven.json
grep -q '"id": "e20/pure_congestion' target/bench-json/BENCH_e20_timing_driven.json
grep -q '"id": "e20/criticality_driven' target/bench-json/BENCH_e20_timing_driven.json
grep -q '"id": "e20/steiner_fanout_' target/bench-json/BENCH_e20_timing_driven.json
echo "    wrote target/bench-json/BENCH_e20_timing_driven.json"

echo "==> example smoke: churn_soak (100-step audited churn + .jrt replay)"
rm -rf target/obs-json/churn_soak target/traces/churn_soak.jrt
cargo run --release --offline --example churn_soak 100 | tee /tmp/churn_soak.out
grep -q "churn soak: 100 steps clean" /tmp/churn_soak.out
grep -q "census identical" /tmp/churn_soak.out
grep -q "churn_soak: OK" /tmp/churn_soak.out
test -s target/traces/churn_soak.jrt
echo "    wrote target/traces/churn_soak.jrt"

echo "==> example smoke: flight_recorder (.jrt replay -> Perfetto trace + Prometheus snapshot)"
rm -rf target/obs-json/flight_recorder target/traces/flight_recorder.jrt
cargo run --release --offline --example flight_recorder 30 | tee /tmp/flight_recorder.out
grep -q "causal audit:" /tmp/flight_recorder.out
grep -q "flight_recorder: OK" /tmp/flight_recorder.out
test -s target/traces/flight_recorder.jrt
test -s target/obs-json/flight_recorder/trace.0.jsonl
grep -q '"traceEvents"' target/obs-json/flight_recorder/trace.0.jsonl
grep -q '"ph"' target/obs-json/flight_recorder/trace.0.jsonl
test -s target/obs-json/flight_recorder/metrics.0.jsonl
grep -q '# TYPE' target/obs-json/flight_recorder/metrics.0.jsonl
grep -q 'jroute_epoch_unix_nanos' target/obs-json/flight_recorder/metrics.0.jsonl
test -s target/obs-json/flight_recorder/window.0.jsonl
grep -q '"samples"' target/obs-json/flight_recorder/window.0.jsonl
echo "    wrote target/obs-json/flight_recorder/{trace,metrics,window}.0.jsonl"
CHROME_SHAPE_CHECK="$PWD/target/obs-json/flight_recorder/trace.0.jsonl" \
    cargo test -q --offline -p jroute-tests --test observability \
    exported_chrome_trace_is_valid_when_pointed_at

echo "==> example smoke: multi_tenant_server (3 tenants, cancel + QueueFull + labelled telemetry)"
cargo run --release --offline --example multi_tenant_server | tee /tmp/multi_tenant_server.out
grep -q "cancelled-before-batch resolved as Cancelled: true" /tmp/multi_tenant_server.out
grep -q "refused with QueueFull" /tmp/multi_tenant_server.out
grep -q 'jroute_svc_server_submitted{tenant="2"}' /tmp/multi_tenant_server.out
grep -q "multi_tenant_server: OK" /tmp/multi_tenant_server.out

echo "==> example smoke: quickstart (with observability enabled)"
rm -f target/obs-json/OBS_quickstart.json
JROUTE_OBS=1 cargo run --release --offline --example quickstart
test -s target/obs-json/OBS_quickstart.json
echo "    wrote target/obs-json/OBS_quickstart.json"
OBS_SHAPE_CHECK="$PWD/target/obs-json/OBS_quickstart.json" \
    cargo test -q --offline -p jroute-tests --test observability \
    exported_quickstart_json_is_valid_when_pointed_at

# Opt-in bench regression gate: regenerate every experiment the
# checked-in baseline covers (e1–e20), then diff medians against
# bench-baseline/, failing on regressions past --max-regress
# (BENCH_MAX_REGRESS, default 10%).
if [[ "${BENCH_BASELINE:-0}" == "1" ]]; then
    echo "==> bench regression gate: e1..e20 vs bench-baseline/"
    for bench in e1_census e2_api_levels e3_fanout e4_template_vs_maze \
        e5_rtr_replace e6_reverse_unroute e7_contention \
        e8_greedy_vs_pathfinder e9_longline_ablation e10_scaling \
        e11_core_compose e12_parallel e13_timing e14_service \
        e15_convergence e16_scenarios e17_obs_overhead e18_partition \
        e19_server e20_timing_driven; do
        BENCH_SAMPLE_SIZE=10 BENCH_MEASURE_MS=1500 BENCH_WARMUP_MS=300 \
            cargo bench --offline --bench "$bench"
    done
    cargo run --release --offline -p jroute-bench --bin compare -- \
        --max-regress "${BENCH_MAX_REGRESS:-10}"
fi

echo "verify: OK"
