//! Observability tour: route a fan-out net on the largest Virtex part
//! with the recorder attached, then inspect what the router did — the
//! span tree, the counter/histogram table, the resource-census delta —
//! and export the machine-readable `OBS_observe_route.json`.
//!
//! Run with: `cargo run --example observe_route`
//!
//! The recorder here is attached explicitly with
//! [`jroute::Recorder::enabled`]; in normal use, setting `JROUTE_OBS=1`
//! enables it on every `Router::new` without touching code.

use jroute::obs::json;
use jroute::{EndPoint, Pin, Recorder, Router};
use virtex::{wire, Device, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::new(Family::Xcv1000); // 64x96 CLBs
    println!(
        "device: {} ({}x{} CLBs)",
        device.family(),
        device.dims().rows,
        device.dims().cols
    );

    let mut router = Router::new(&device);
    router.set_recorder(Recorder::enabled());
    let usage_before = router.resource_usage();

    // A wide fan-out net across the die: one source, five sinks.
    let src: EndPoint = Pin::new(30, 40, wire::S0_YQ).into();
    let sinks: Vec<EndPoint> = vec![
        Pin::new(30, 50, wire::S0_F3).into(),
        Pin::new(36, 44, wire::S1_F1).into(),
        Pin::new(24, 38, wire::slice_in(0, wire::slice_in_pin::G2)).into(),
        Pin::new(33, 30, wire::slice_in(1, wire::slice_in_pin::F2)).into(),
        Pin::new(40, 48, wire::slice_in(0, wire::slice_in_pin::F1)).into(),
    ];
    router.route_fanout(&src, &sinks)?;
    let net = router.trace(&src)?;
    println!(
        "routed fan-out: {} sinks, {} PIPs, {} segments\n",
        net.sinks.len(),
        net.pips.len(),
        net.segments.len()
    );

    // What did that cost? The census delta shows which wire classes the
    // net consumed (§2's resource taxonomy).
    let delta = router.resource_usage().diff(&usage_before);
    println!("resource delta: {delta}\n");

    // Every API call, maze search and JBits write was recorded.
    let report = router.obs_report();
    println!("span tree (who called what, and how long it took):");
    print!("{}", report.span_tree());
    println!("\n{report}");

    let path = json::export(&report, "observe_route")?;
    println!("exported: {}", path.display());
    Ok(())
}
