//! Batch routing service demo (the E14 extension): drive `jroute-svc`
//! through the run-time traffic a reconfiguration controller generates —
//! a burst of route requests with priorities, then a second batch that
//! unroutes, replaces and cancels against the committed state — and
//! inspect the scheduler's work-stealing telemetry.
//!
//! Run with: `cargo run --release --example route_service`

use detrand::DetRng;
use jroute::Recorder;
use jroute_svc::{Deadline, ExecMode, RequestKind, RequestOutcome, RoutingService, ServiceConfig};
use jroute_workloads::{random_netlist, NetlistParams};
use virtex::{Device, Family};

fn main() {
    let device = Device::new(Family::Xcv1000); // 64x96 CLBs
    let cfg = ServiceConfig {
        threads: 4,
        ..Default::default()
    };
    let mut svc = RoutingService::with_recorder(&device, cfg, Recorder::enabled());
    println!(
        "service on {} with {} workers (threaded mode)\n",
        device.family(),
        4
    );

    // ── Batch 1: a burst of route requests at mixed priorities ────────
    let mut rng = DetRng::seed_from_u64(7);
    let specs = random_netlist(
        &device,
        &NetlistParams {
            nets: 40,
            max_fanout: 2,
            max_span: Some(12),
        },
        &mut rng,
    );
    let ids: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            // Lower number = more urgent; every fourth net is high-priority.
            let priority = if i % 4 == 0 { 16 } else { 128 };
            let (id, _) = svc
                .submit_with(RequestKind::Route(s.clone()), priority, None)
                .expect("queue has room");
            id
        })
        .collect();
    let report = svc.run_batch();
    let routed: Vec<_> = ids
        .iter()
        .copied()
        .filter(|&id| report.outcome(id).is_some_and(|o| o.is_success()))
        .collect();
    println!(
        "batch 1: {}/{} routed  ({} executions, {} steals, {} retries)",
        routed.len(),
        ids.len(),
        report.executed,
        report.steals,
        report.retries
    );

    // ── Batch 2: the §5 core-swap pattern against committed state ─────
    // Unroute five nets, atomically replace one with two fresh nets,
    // route more fresh traffic, and cancel one request mid-queue.
    let fresh = random_netlist(
        &device,
        &NetlistParams {
            nets: 10,
            max_fanout: 1,
            max_span: Some(12),
        },
        &mut rng,
    );
    for &id in routed.iter().take(5) {
        svc.submit(RequestKind::Unroute(id)).unwrap();
    }
    svc.submit(RequestKind::Replace {
        remove: vec![routed[5]],
        add: vec![fresh[0].clone(), fresh[1].clone()],
    })
    .unwrap();
    for s in &fresh[2..] {
        svc.submit(RequestKind::Route(s.clone())).unwrap();
    }
    let (doomed, token) = svc
        .submit_with(RequestKind::Route(specs[0].clone()), 128, None)
        .unwrap();
    token.cancel();
    let (hopeless, _) = svc
        .submit_with(
            RequestKind::Route(specs[1].clone()),
            255,
            Some(Deadline::Steps(0)),
        )
        .unwrap();

    let report = svc.run_batch();
    println!("batch 2 outcomes:");
    for (id, outcome) in &report.outcomes {
        let tag = match outcome {
            RequestOutcome::Routed { segments, .. } => format!("routed ({segments} segments)"),
            RequestOutcome::Unrouted { nets } => format!("unrouted {} nets", nets.len()),
            RequestOutcome::Replaced { removed, added } => {
                format!("replaced {} nets with {}", removed.len(), added.len())
            }
            RequestOutcome::Cancelled => "cancelled".into(),
            RequestOutcome::Expired => "deadline expired".into(),
            RequestOutcome::Congested { attempts } => format!("congested after {attempts} tries"),
            RequestOutcome::Rejected(r) => format!("rejected: {r:?}"),
        };
        println!("  request {id:>3}: {tag}");
    }
    assert_eq!(report.outcome(doomed), Some(&RequestOutcome::Cancelled));
    assert_eq!(report.outcome(hopeless), Some(&RequestOutcome::Expired));
    println!("\ncommitted nets now live: {}", svc.db().len());

    // ── Telemetry: what the scheduler measured ────────────────────────
    let obs = svc.recorder().report();
    println!("\n{obs}");

    // ── The same workload, bit-for-bit reproducible ───────────────────
    // Deterministic mode replays a seeded schedule: same seed, same
    // completion log, same final state — the substrate the stress suite
    // uses to diff the service against a sequential model.
    let det = ServiceConfig {
        threads: 4,
        mode: ExecMode::Deterministic { seed: 42 },
        ..Default::default()
    };
    let replay = |seed_note: &str| {
        let mut svc = RoutingService::new(&device, det.clone());
        for s in &specs {
            svc.submit(RequestKind::Route(s.clone())).unwrap();
        }
        let report = svc.run_batch();
        let log: Vec<_> = report.log.iter().map(|e| (e.step, e.request)).collect();
        println!(
            "deterministic {}: {} completions, first five steps {:?}",
            seed_note,
            log.len(),
            &log[..5.min(log.len())]
        );
        log
    };
    let a = replay("run A");
    let b = replay("run B");
    assert_eq!(a, b, "same seed must reproduce the schedule");
    println!("deterministic replay: schedules identical");
}
