//! BoardScope-style debugging (paper §3.5): trace a net forward to all of
//! its sinks, trace a sink back to its source, and diff configuration
//! snapshots around a reconfiguration.
//!
//! Run with: `cargo run --example debug_trace`

use jbits::{diff, snapshot};
use jroute::{EndPoint, Pin, Router};
use virtex::{wire, Device, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::new(Family::Xcv50);
    let mut router = Router::new(&device);

    // A fan-out net: one source, three sinks.
    let src: EndPoint = Pin::new(8, 8, wire::S0_YQ).into();
    let sinks: Vec<EndPoint> = vec![
        Pin::new(8, 12, wire::S0_F3).into(),
        Pin::new(11, 9, wire::S1_F1).into(),
        Pin::new(6, 10, wire::slice_in(0, wire::slice_in_pin::G2)).into(),
    ];
    let before = snapshot(router.bits());
    router.route_fanout(&src, &sinks)?;

    // trace(EndPoint): "traces a source to all of its sinks. The entire
    // net is returned."
    let net = router.trace(&src)?;
    println!("trace from {src}:");
    println!("  {} segments, {} PIPs", net.segments.len(), net.pips.len());
    for sink in &net.sinks {
        println!("  sink: {sink}");
    }
    assert_eq!(net.sinks.len(), 3);

    // reverseTrace(EndPoint): "A sink is traced back to its source. Only
    // the net that leads to the sink is returned."
    let (hops, found_src) = router.reverse_trace(&sinks[1])?;
    println!("\nreverse trace from {}:", sinks[1]);
    for (rc, pip) in &hops {
        println!("  {} -> {} at {rc}", pip.from.name(), pip.to.name());
    }
    println!("  source: {found_src}");

    // isOn (§3.4).
    let probe = net.segments[1];
    println!(
        "\nis_on({}, {}) = {}",
        probe.rc,
        probe.wire.name(),
        router.is_on(probe.rc, probe.wire)?
    );

    // Readback diff: exactly what changed on the device?
    let after = snapshot(router.bits());
    let changes = diff(&before, &after);
    println!("\nreadback diff: {} configuration changes", changes.len());
    assert_eq!(changes.len(), net.pips.len());

    // Branch surgery: free only the branch to the second sink, then show
    // the net again.
    router.reverse_unroute(&sinks[1])?;
    let net2 = router.trace(&src)?;
    println!(
        "\nafter reverse_unroute of {}: {} sinks remain, {} PIPs freed",
        sinks[1],
        net2.sinks.len(),
        net.pips.len() - net2.pips.len()
    );
    assert_eq!(net2.sinks.len(), 2);
    Ok(())
}
