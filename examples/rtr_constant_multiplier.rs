//! The paper's §3.3 run-time reconfiguration scenario, end to end:
//!
//! *"consider a constant multiplier. The system connects it to the
//! circuit and later requires a new constant. The core can be removed,
//! unrouted, and replaced with a new constant multiplier without having
//! to specify connections again."*
//!
//! Run with: `cargo run --example rtr_constant_multiplier`

use jroute::{EndPoint, Router};
use jroute_cores::{replace_with, ConstMultiplier, RtpCore, StimulusBank};
use virtex::{Device, Family, RowCol};
use vsim::{LogicSource, Simulator};

fn product(router: &Router, stim: &StimulusBank, mul: &ConstMultiplier, a: u64) -> u64 {
    let mut sim = Simulator::new(router.bits());
    for bit in 0..stim.width() {
        let pin = stim.driver_pin(bit);
        sim.force(
            LogicSource::Yq {
                rc: pin.rc,
                slice: 1,
            },
            (a >> bit) & 1 == 1,
        );
    }
    (0..mul.out_width()).fold(0u64, |acc, j| {
        let v = sim
            .read(LogicSource::X {
                rc: mul.product_site(j),
                slice: 0,
            })
            .expect("combinational product");
        acc | (v as u64) << j
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::new(Family::Xcv300);
    let mut router = Router::new(&device);

    // Build the system: a 4-bit input source and a x3 multiplier.
    let mut stim = StimulusBank::new(4, RowCol::new(4, 4));
    let mut mul = ConstMultiplier::new(3, 8, RowCol::new(4, 12));
    stim.implement(&mut router)?;
    mul.implement(&mut router)?;
    let outs: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let ins: Vec<EndPoint> = mul.a_ports().iter().map(|&p| p.into()).collect();
    router.route_bus(&outs, &ins)?;
    router.bits_mut().frames_mut().take(); // end the build transaction

    println!(
        "connected: {} PIPs, {}",
        router.stats().pips_set,
        router.resource_usage()
    );
    for a in [2u64, 7, 15] {
        println!("  {a} * 3 = {}", product(&router, &stim, &mul, a));
        assert_eq!(product(&router, &stim, &mul, a), a * 3);
    }

    // The system now requires a new constant: replace the core. The
    // connections to its ports are remembered and automatically re-made.
    replace_with(&mut mul, &mut router, |m| m.set_constant(11))?;
    let frames = router.bits_mut().frames_mut().take().len();
    println!("replaced K=3 with K=11: {frames} configuration frames touched");
    assert!(
        router.remembered().is_empty(),
        "connections re-made automatically"
    );

    for a in [2u64, 7, 15] {
        println!("  {a} * 11 = {}", product(&router, &stim, &mul, a));
        assert_eq!(product(&router, &stim, &mul, a), a * 11);
    }
    println!("RTR replacement complete — no connection was ever re-specified.");
    Ok(())
}
