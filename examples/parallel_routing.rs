//! Parallel routing of independent nets (the E12 extension): route a
//! large random netlist with several worker threads and verify the
//! committed configuration is contention-free.
//!
//! Run with: `cargo run --release --example parallel_routing`

use detrand::DetRng;
use jroute::parallel::{route_parallel, ParallelConfig};
use jroute_workloads::{random_netlist, NetlistParams};
use std::time::Instant;
use virtex::{Device, Family};

fn main() {
    let device = Device::new(Family::Xcv1000); // 64x96 CLBs
    let mut rng = DetRng::seed_from_u64(7);
    let specs = random_netlist(
        &device,
        &NetlistParams {
            nets: 150,
            max_fanout: 2,
            max_span: Some(12),
        },
        &mut rng,
    );
    println!(
        "{} nets on {} ({} CLBs)",
        specs.len(),
        device.family(),
        device.dims().tiles()
    );

    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ParallelConfig {
            threads,
            ..Default::default()
        };
        let t0 = Instant::now();
        let result = route_parallel(&device, &specs, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(dt);
        println!(
            "threads={threads}: routed {}/{} in {:>6.1} ms ({} rounds, {} conflicts, {:.2}x)",
            result.nets.len(),
            specs.len(),
            dt * 1e3,
            result.rounds,
            result.conflicts,
            base / dt
        );

        // Commit to a bitstream and verify the single-driver invariant.
        let mut bits = jbits::Bitstream::new(&device);
        for net in &result.nets {
            for &(rc, pip) in &net.pips {
                bits.set_pip(rc, pip.from, pip.to).expect("legal pip");
            }
        }
        for net in &result.nets {
            for seg in &net.segments {
                assert!(bits.segment_drivers(*seg).len() <= 1, "contention on {seg}");
            }
        }
    }
    println!("all thread counts produced contention-free configurations");
}
