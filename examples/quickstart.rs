//! Quickstart: the paper's §3.1 worked example at every level of control.
//!
//! Run with: `cargo run --example quickstart`
//!
//! All four routes configure the same connection — slice 1's YQ output at
//! CLB (5,7) to slice 0's F3 input at CLB (6,8) — exactly the example the
//! paper walks through for each API level.

use jroute::{EndPoint, Path, Pin, Router, Template};
use virtex::{wire, Device, Dir, Family, TemplateValue as T};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::new(Family::Xcv50); // 16x24 CLBs
    println!(
        "device: {} ({}x{} CLBs)",
        device.family(),
        device.dims().rows,
        device.dims().cols
    );

    // ------------------------------------------------------------------
    // Level 1 — single connections: the user decides the path.
    // ------------------------------------------------------------------
    let mut router = Router::new(&device);
    router.route_rc(5, 7, wire::S1_YQ, wire::out(1))?;
    router.route_rc(5, 7, wire::out(1), wire::single(Dir::East, 5))?;
    // The paper calls this wire "SingleWest[5]" at (5,8): the east-going
    // single arriving from (5,7).
    router.route_rc(
        5,
        8,
        wire::single_end(Dir::East, 5),
        wire::single(Dir::North, 0),
    )?;
    router.route_rc(6, 8, wire::single_end(Dir::North, 0), wire::S0_F3)?;
    println!("level 1 (manual):   {} PIPs", router.stats().pips_set);
    let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
    router.unroute(&src)?;

    // ------------------------------------------------------------------
    // Level 2 — an explicit Path: name the wires, the router finds the
    // tiles.
    // ------------------------------------------------------------------
    let path = Path::new(
        5,
        7,
        vec![
            wire::S1_YQ,
            wire::out(1),
            wire::single(Dir::East, 5),
            wire::single(Dir::North, 0),
            wire::S0_F3,
        ],
    );
    router.route_path(&path)?;
    println!(
        "level 2 (path):     {} sinks traced",
        router.trace(&src)?.sinks.len()
    );
    router.unroute(&src)?;

    // ------------------------------------------------------------------
    // Level 3 — a Template: name only direction/resource classes.
    // ------------------------------------------------------------------
    let template = Template::new(vec![T::OutMux, T::East1, T::North1, T::ClbIn]);
    router.route_template(Pin::new(5, 7, wire::S1_YQ), wire::S0_F3, &template)?;
    println!("level 3 (template): {:?}", router.trace(&src)?.sinks);
    router.unroute(&src)?;

    // ------------------------------------------------------------------
    // Level 4 — auto-routing: just the endpoints.
    // ------------------------------------------------------------------
    let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
    router.route(&src, &sink)?;
    let net = router.trace(&src)?;
    println!(
        "level 4 (auto):     {} PIPs, {} segments",
        net.pips.len(),
        net.segments.len()
    );

    // And back off again: RTR needs an unrouter (§3.3).
    let cleared = router.unroute(&src)?;
    println!("unrouted:           {cleared} PIPs cleared, device blank again");
    assert_eq!(router.bits().on_pip_count(), 0);

    // With JROUTE_OBS=1 the router recorded every call above; dump the
    // telemetry and export it for machine consumption.
    if router.recorder().is_enabled() {
        let report = router.obs_report();
        println!("\n{report}");
        let path = jroute::obs::json::export(&report, "quickstart")?;
        println!("obs export: {}", path.display());
    }
    Ok(())
}
