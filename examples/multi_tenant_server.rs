//! Multi-tenant routing server demo (DESIGN.md §3.8): three tenants,
//! each owning a private XCV50 shard, submitting concurrently from their
//! own producer threads into one shared server. Shows the full surface:
//! watermark batching, per-tenant backpressure (`QueueFull`),
//! cancellation of a queued request, and the tenant-labelled telemetry —
//! the rolling window plus a Prometheus snapshot.
//!
//! Run with: `cargo run --release --example multi_tenant_server`

use detrand::DetRng;
use jroute::obs::{labeled, prometheus_text, Recorder};
use jroute_svc::{serve, ExecMode, RequestKind, ServerConfig, ServerOutcome, TenantId};
use jroute_workloads::fanout_spec;
use virtex::{Device, Family, RowCol};

const TENANTS: usize = 3;
const PER_TENANT: usize = 24;

fn main() {
    let devices: Vec<Device> = (0..TENANTS).map(|_| Device::new(Family::Xcv50)).collect();
    let refs: Vec<&Device> = devices.iter().collect();
    let obs = Recorder::enabled();
    let cfg = ServerConfig {
        threads: 4,
        tenant_threads: 2,
        mode: ExecMode::Threaded,
        batch_max: 8,
        batch_wait: 4,
        // Small admission gates so the backpressure demo below can
        // outrun the executor and observe QueueFull.
        queue_capacity: 64,
        ..Default::default()
    };
    println!(
        "server: {TENANTS} tenants on private {} shards, 4 shared workers, \
         batches cut at 8 requests / 4 steps\n",
        devices[0].family()
    );

    let (stats, report) = serve(&refs, cfg, obs.clone(), |client| {
        std::thread::scope(|s| {
            let producers: Vec<_> = (0..TENANTS)
                .map(|t| {
                    let handle = client.tenant(t as TenantId);
                    let dev = &devices[t];
                    s.spawn(move || {
                        let mut rng = DetRng::seed_from_u64(0x5EED ^ t as u64);
                        let tickets: Vec<_> = (0..PER_TENANT)
                            .map(|_| {
                                let src =
                                    RowCol::new(rng.gen_range(1u16..14), rng.gen_range(1u16..22));
                                let spec = fanout_spec(dev, src, 2, 4, &mut rng);
                                handle
                                    .submit(RequestKind::Route(spec))
                                    .expect("gate sized for the demo")
                            })
                            .collect();
                        handle.flush();
                        tickets.iter().filter(|t| t.wait().is_success()).count()
                    })
                })
                .collect();
            let routed: Vec<usize> = producers.into_iter().map(|j| j.join().unwrap()).collect();

            // Cancellation: park a request behind the watermark, cancel
            // it before the cut, and watch it resolve as Cancelled.
            let h = client.tenant(0);
            let mut rng = DetRng::seed_from_u64(0xCA7);
            let doomed = h
                .submit(RequestKind::Route(fanout_spec(
                    &devices[0],
                    RowCol::new(7, 11),
                    2,
                    4,
                    &mut rng,
                )))
                .unwrap();
            doomed.cancel_token().cancel();
            h.flush();
            let cancelled = matches!(
                doomed.wait(),
                ServerOutcome::Done(jroute_svc::RequestOutcome::Cancelled)
            );

            // Backpressure: storm the small gate faster than routing can
            // drain it; submission fails synchronously with QueueFull.
            let mut refused = 0usize;
            let mut storm = Vec::new();
            for _ in 0..10_000 {
                let src = RowCol::new(rng.gen_range(1u16..14), rng.gen_range(1u16..22));
                match h.submit(RequestKind::Route(fanout_spec(
                    &devices[0],
                    src,
                    2,
                    4,
                    &mut rng,
                ))) {
                    Ok(t) => storm.push(t),
                    Err(_) => {
                        refused += 1;
                        break;
                    }
                }
            }
            h.flush();
            for t in &storm {
                t.wait();
            }
            (routed, cancelled, refused)
        })
    });

    let (routed, cancelled, refused) = stats;
    for (t, ok) in routed.iter().enumerate() {
        println!(
            "tenant {t}: {ok}/{PER_TENANT} routed over {} batches, census {} segments",
            report.tenants[t].batches,
            report.tenants[t].census.len()
        );
    }
    println!("cancelled-before-batch resolved as Cancelled: {cancelled}");
    println!("backpressure: {refused} submission(s) refused with QueueFull");

    let window = report.window.as_ref().expect("recorder enabled");
    let last = window.latest().expect("server ticked");
    println!(
        "\nwindow: {} samples; final queue depths: {:?}",
        window.len(),
        (0..TENANTS)
            .map(|t| last
                .value(&labeled("svc.server.queue_depth", "tenant", t))
                .unwrap_or(0.0))
            .collect::<Vec<_>>()
    );

    let text = prometheus_text(&obs.report());
    println!("\nPrometheus snapshot (tenant-labelled families):");
    for line in text
        .lines()
        .filter(|l| l.contains("jroute_svc_server_submitted") && !l.starts_with('#'))
    {
        println!("  {line}");
    }

    assert!(routed.iter().all(|&ok| ok > 0));
    assert!(cancelled);
    assert!(refused >= 1, "the storm must hit the admission gate");
    println!("\nmulti_tenant_server: OK");
}
