//! A data-flow pipeline built from cores and bus routing (paper §3.1):
//!
//! *"In a data flow design, the outputs of one stage go to the inputs of
//! the next stage. ... the output ports of a multiplier core could be
//! connected to the input ports of an adder core."*
//!
//! Pipeline: stimulus -> constant multiplier (x5) -> constant adder (+9),
//! then the whole result is verified functionally and one stage is
//! relocated at "run time" with every connection re-made automatically.
//!
//! Run with: `cargo run --example dataflow_pipeline`

use jroute::{EndPoint, Router};
use jroute_cores::{relocate, ConstAdder, ConstMultiplier, RtpCore, StimulusBank};
use virtex::{Device, Family, RowCol};
use vsim::{LogicSource, Simulator};

fn ports(ids: &[jroute::PortId]) -> Vec<EndPoint> {
    ids.iter().map(|&p| p.into()).collect()
}

fn eval(router: &Router, stim: &StimulusBank, adder: &ConstAdder, a: u64) -> u64 {
    let mut sim = Simulator::new(router.bits());
    for bit in 0..stim.width() {
        let pin = stim.driver_pin(bit);
        sim.force(
            LogicSource::Yq {
                rc: pin.rc,
                slice: 1,
            },
            (a >> bit) & 1 == 1,
        );
    }
    (0..adder.width()).fold(0u64, |acc, j| {
        let v = sim
            .read(LogicSource::X {
                rc: adder.sum_site(j),
                slice: 0,
            })
            .expect("combinational sum");
        acc | (v as u64) << j
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::new(Family::Xcv300);
    let mut router = Router::new(&device);

    // Stage placement along a row, like the paper's data-flow picture.
    let mut stim = StimulusBank::new(4, RowCol::new(6, 4));
    let mut mul = ConstMultiplier::new(5, 8, RowCol::new(6, 12));
    let mut add = ConstAdder::new(8, 9, RowCol::new(6, 22));
    stim.implement(&mut router)?;
    mul.implement(&mut router)?;
    add.implement(&mut router)?;

    // Port-to-port bus connections; no wire names anywhere.
    router.route_bus(&ports(stim.out_ports()), &ports(mul.a_ports()))?;
    router.route_bus(&ports(mul.p_ports()), &ports(add.a_ports()))?;

    println!("pipeline built: {}", router.resource_usage());
    for a in 0..16u64 {
        let got = eval(&router, &stim, &add, a);
        assert_eq!(got, (a * 5 + 9) & 0xFF, "a={a}");
    }
    println!("f(a) = a*5 + 9 verified for all 4-bit inputs");

    // Run-time relocation of the middle stage: every connection into and
    // out of the multiplier is unrouted, remembered, and re-made.
    relocate(&mut mul, &mut router, RowCol::new(14, 16))?;
    println!(
        "relocated multiplier to (14,16); remembered queue now {} entries",
        router.remembered().len()
    );
    for a in 0..16u64 {
        assert_eq!(
            eval(&router, &stim, &add, a),
            (a * 5 + 9) & 0xFF,
            "a={a} after move"
        );
    }
    println!("pipeline still computes f(a) = a*5 + 9 after relocation");
    Ok(())
}
