//! Churn soak demo (the E16 scenario corpus): run a seeded
//! compose / relocate / replace / retire churn of RTP cores against the
//! batch routing service, audit every step, record the whole request
//! stream as a `.jrt` trace, then
//!
//! * replay the trace into a fresh service and diff the segment census
//!   (record/replay fidelity),
//! * re-negotiate the live demand with the incremental PathFinder, and
//! * fold the accumulated telemetry through the self-tuner and show the
//!   maze budgets it derives.
//!
//! Span telemetry streams through a size-capped rotating file sink under
//! `target/obs-json/churn_soak/`.
//!
//! Run with: `cargo run --release --example churn_soak [steps]`

use jroute::obs::RotatingFileSink;
use jroute::pathfinder::PathFinderConfig;
use jroute::tuner::TunerReport;
use jroute::Recorder;
use jroute_svc::{ExecMode, RoutingService, ServiceConfig};
use jroute_workloads::{ChurnAction, ChurnParams, ChurnScenario};
use virtex::{Device, Family};

const SEED: u64 = 0xC0DE;

fn det_cfg(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        mode: ExecMode::Deterministic { seed: SEED },
        audit: true,
        ..Default::default()
    }
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let device = Device::new(Family::Xcv50);

    // Telemetry recorder streaming spans through a rotating sink:
    // at most 4 files x 64 KiB under target/obs-json/churn_soak/.
    let sink_dir = std::path::Path::new("target/obs-json/churn_soak");
    let recorder = Recorder::enabled();
    let sink =
        RotatingFileSink::new(sink_dir, "spans", 64 * 1024, 4).expect("sink directory creatable");
    recorder.set_span_sink(sink);

    let mut sc =
        ChurnScenario::with_recorder(&device, det_cfg(2), ChurnParams::default(), SEED, recorder);

    // ── The soak: every step is one audited service batch ─────────────
    let mut tally = std::collections::BTreeMap::new();
    for _ in 0..steps {
        let out = sc.step().expect("churn must stay violation-free");
        let name = match out.action {
            ChurnAction::Compose => "compose",
            ChurnAction::Relocate => "relocate",
            ChurnAction::Replace => "replace",
            ChurnAction::Retire => "retire",
        };
        *tally.entry(name).or_insert(0usize) += 1;
    }
    print!("churn soak: {steps} steps clean (");
    let parts: Vec<String> = tally.iter().map(|(k, v)| format!("{v} {k}")).collect();
    println!("{})", parts.join(", "));
    println!(
        "live state: {} cores, {} nets, {} segments",
        sc.live_cores(),
        sc.live_nets(),
        sc.svc().db().census().len()
    );

    // ── Record/replay: save the trace, replay it fresh, diff census ───
    let trace_path = std::path::Path::new("target/traces/churn_soak.jrt");
    std::fs::create_dir_all(trace_path.parent().unwrap()).unwrap();
    sc.trace().save(trace_path).expect("trace saves");
    let loaded = jroute_svc::Trace::load(trace_path).expect("trace loads");
    let mut fresh = RoutingService::new(&device, det_cfg(2));
    let summary = loaded.replay(&mut fresh).expect("trace replays");
    assert_eq!(fresh.db().census(), sc.svc().db().census());
    println!(
        "trace replay: {} requests ({} succeeded) from {} -> census identical",
        summary.submitted,
        summary.succeeded,
        trace_path.display()
    );

    // ── Negotiate the live demand and let the tuner read the meters ───
    let base = PathFinderConfig::default();
    let res = sc.negotiate(&base).expect("live pins resolve");
    assert!(res.legal, "live demand must be routable from scratch");
    println!(
        "negotiation: {} nets legal in {} iterations, {} nodes expanded",
        res.nets.len(),
        res.iterations,
        res.nodes_expanded
    );
    let report = sc.svc().recorder().report();
    let tuner = TunerReport::from_report(&report).expect("telemetry present");
    let tuned = sc.retune(&base).expect("telemetry present");
    println!(
        "self-tuning: {} searches, p99 {} nodes -> max_nodes {} (was {}), bbox margin {:?} (was {:?})",
        tuner.searches,
        tuner.expanded_p99,
        tuned.maze.max_nodes,
        base.maze.max_nodes,
        tuned.bbox_margin,
        base.bbox_margin
    );

    // ── What hit the rotating sink ────────────────────────────────────
    sc.svc().recorder().flush_spans();
    let files = RotatingFileSink::files_written(sink_dir, "spans", 4);
    assert!(!files.is_empty(), "the soak must have streamed spans");
    println!(
        "span sink: {} rotating file(s) under {}",
        files.len(),
        sink_dir.display()
    );
    println!("churn_soak: OK");
}
