//! Flight recorder demo: replay a recorded `.jrt` churn trace through an
//! instrumented routing service and export the run as a Perfetto-loadable
//! Chrome trace, a Prometheus-style metrics snapshot, and the rolling
//! per-batch window series.
//!
//! The point of the exercise is *causal* tracing: every request mints a
//! `svc.request` root span at submission, and the trace context rides the
//! request through queueing, work-stealing and retry parking, so each
//! `svc.exec` / `parallel.net` / `maze.search` span — whichever worker
//! thread it lands on — carries the originating request's trace id. The
//! example asserts that end to end, then writes:
//!
//! * `target/obs-json/flight_recorder/trace.0.jsonl` — Chrome
//!   `trace_event` JSON; load it at <https://ui.perfetto.dev>,
//! * `target/obs-json/flight_recorder/metrics.0.jsonl` — Prometheus text
//!   exposition snapshot,
//! * `target/obs-json/flight_recorder/window.0.jsonl` — the per-batch
//!   rolling time-series (queue depth, batch p50/p99, steal rate).
//!
//! Run with: `cargo run --release --example flight_recorder [steps]`

use jroute::obs::{prometheus_text, write_chrome_trace, RotatingFileSink};
use jroute::Recorder;
use jroute_svc::{ExecMode, RoutingService, ServiceConfig, Trace};
use jroute_workloads::{ChurnParams, ChurnScenario};
use std::collections::HashSet;
use std::io::Write;
use virtex::{Device, Family};

const SEED: u64 = 0xF117;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let device = Device::new(Family::Xcv50);

    // ── Record: a deterministic churn produces the .jrt request log ───
    let record_cfg = ServiceConfig {
        threads: 2,
        mode: ExecMode::Deterministic { seed: SEED },
        audit: true,
        ..Default::default()
    };
    let mut sc = ChurnScenario::new(&device, record_cfg, ChurnParams::default(), SEED);
    for _ in 0..steps {
        sc.step().expect("churn must stay violation-free");
    }
    let trace_path = std::path::Path::new("target/traces/flight_recorder.jrt");
    std::fs::create_dir_all(trace_path.parent().unwrap()).unwrap();
    sc.trace().save(trace_path).expect("trace saves");
    println!(
        "recorded: {} churn steps -> {} ({} requests)",
        steps,
        trace_path.display(),
        sc.trace().len()
    );

    // ── Replay: same request stream, real threads, flight recorder on ─
    let recorder = Recorder::enabled();
    let replay_cfg = ServiceConfig {
        threads: 4,
        mode: ExecMode::Threaded,
        audit: true,
        ..Default::default()
    };
    let mut svc = RoutingService::with_recorder(&device, replay_cfg, recorder.clone());
    let loaded = Trace::load(trace_path).expect("trace loads");
    let summary = loaded.replay(&mut svc).expect("trace replays");
    println!(
        "replayed: {} requests ({} succeeded) over 4 worker threads",
        summary.submitted, summary.succeeded
    );

    // ── Causal linkage audit: every routing span traces to a request ──
    let report = recorder.report();
    let roots: HashSet<u64> = report
        .spans
        .iter()
        .filter(|s| s.name == "svc.request")
        .map(|s| s.trace)
        .collect();
    let batch_traces: HashSet<u64> = report
        .spans
        .iter()
        .filter(|s| s.name == "svc.batch")
        .map(|s| s.trace)
        .collect();
    assert!(!roots.is_empty(), "replay must mint request roots");
    let mut linked = 0usize;
    for s in report
        .spans
        .iter()
        .filter(|s| matches!(s.name, "svc.exec" | "parallel.net" | "maze.search"))
    {
        assert!(
            roots.contains(&s.trace),
            "span {} (trace {}) is not causally linked to any svc.request",
            s.name,
            s.trace
        );
        linked += 1;
    }
    assert!(linked > 0, "the replay must have routed something");
    // Worker/schedule spans link to their batch instead.
    for s in report
        .spans
        .iter()
        .filter(|s| matches!(s.name, "svc.worker" | "svc.schedule"))
    {
        assert!(batch_traces.contains(&s.trace));
    }
    // Under threaded execution the exec spans run on worker threads while
    // the submission roots live on the main thread: real hand-offs.
    let root_threads: HashSet<u64> = report
        .spans
        .iter()
        .filter(|s| s.name == "svc.request")
        .map(|s| s.thread)
        .collect();
    let cross = report
        .spans
        .iter()
        .filter(|s| s.name == "svc.exec" && !root_threads.contains(&s.thread))
        .count();
    assert!(cross > 0, "expected cross-thread request hand-offs");
    println!("causal audit: {linked} routing spans linked, {cross} cross-thread hand-offs");

    // ── Export the flight recording ───────────────────────────────────
    let out_dir = std::path::Path::new("target/obs-json/flight_recorder");
    let mut chrome = RotatingFileSink::new(out_dir, "trace", 16 << 20, 2).expect("sink dir");
    write_chrome_trace(&report, &mut chrome).expect("chrome trace writes");
    let mut prom = RotatingFileSink::new(out_dir, "metrics", 1 << 20, 2).expect("sink dir");
    prom.write_all(prometheus_text(&report).as_bytes())
        .expect("prometheus snapshot writes");
    prom.flush().unwrap();
    let window = svc.window().expect("enabled recorder has a window");
    let mut win = RotatingFileSink::new(out_dir, "window", 1 << 20, 2).expect("sink dir");
    win.write_all(window.to_json().as_bytes())
        .expect("window series writes");
    win.flush().unwrap();
    println!(
        "exported: {} spans, {} window samples -> {}",
        report.spans.len(),
        window.len(),
        out_dir.display()
    );
    println!("open trace.0.jsonl at https://ui.perfetto.dev to browse the recording");
    println!("flight_recorder: OK");
}
